//! Open-loop sharded-replication workload (the Derecho-style deployment
//! of paper §I/§VII: many small overlapping RDMC groups on one fabric).
//!
//! A key/value store shards its state over a cluster; each shard is an
//! RDMC group of `replication_factor` nodes, and consecutive shards
//! overlap on the ring, so every node serves several tenants at once.
//! Updates arrive *open loop*: an exponential arrival process offers
//! load at a configured aggregate rate whether or not the fabric keeps
//! up — exactly the regime where per-NIC admission control matters,
//! because a backlogged node cannot push back on the arrival process.
//!
//! Everything is deterministic given the seed (no wall clock): the
//! schedule is a pure function of the configuration, so simulation
//! sweeps are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::cosmos::sample_lognormal;

/// One replicated update offered to the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardArrival {
    /// Arrival time in virtual nanoseconds from the start of the run.
    pub at_ns: u64,
    /// The shard (group) the update is for.
    pub shard: usize,
    /// Update size in bytes.
    pub size: u64,
}

/// Generator configuration for the sharded open-loop workload.
#[derive(Clone, Debug)]
pub struct ShardedWorkload {
    /// RNG seed (the schedule is deterministic given the seed).
    pub seed: u64,
    /// Nodes in the cluster the shards are laid out over.
    pub nodes: usize,
    /// Number of shards (one RDMC group each).
    pub shards: usize,
    /// Replicas per shard (group size).
    pub replication_factor: usize,
    /// Aggregate offered load across all shards, in Gb/s. The arrival
    /// rate is `offered / (8 * mean size)`; tail clamping makes the
    /// realized load land slightly below this figure.
    pub offered_gbps: f64,
    /// Median update size in bytes (log-normal, as in the Cosmos trace).
    pub median_bytes: f64,
    /// Mean update size in bytes.
    pub mean_bytes: f64,
    /// Smallest update.
    pub min_bytes: u64,
    /// Largest update.
    pub max_bytes: u64,
}

impl Default for ShardedWorkload {
    fn default() -> Self {
        ShardedWorkload {
            seed: 0x5AAD,
            nodes: 16,
            shards: 8,
            replication_factor: 3,
            offered_gbps: 20.0,
            median_bytes: 2e6,
            mean_bytes: 4e6,
            min_bytes: 4 << 10,
            max_bytes: 64 << 20,
        }
    }
}

impl ShardedWorkload {
    /// The same workload offered at a different aggregate rate — the
    /// knob a load sweep turns (same seed: the arrival *pattern* keeps
    /// its shape, only the spacing changes).
    pub fn with_load(&self, offered_gbps: f64) -> Self {
        ShardedWorkload {
            offered_gbps,
            ..self.clone()
        }
    }

    /// Fabric nodes of one shard, root first: `replication_factor`
    /// consecutive nodes on the ring starting at the shard's home node.
    /// Roots are spread evenly over the cluster, and consecutive shards
    /// overlap whenever `shards * replication_factor > nodes`.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range or the configuration is
    /// degenerate (no nodes/shards, or more replicas than nodes).
    pub fn members(&self, shard: usize) -> Vec<usize> {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        assert!(self.nodes > 0 && self.shards > 0, "empty layout");
        assert!(
            self.replication_factor >= 1 && self.replication_factor <= self.nodes,
            "cannot place {} replicas on {} nodes",
            self.replication_factor,
            self.nodes
        );
        let home = shard * self.nodes / self.shards;
        (0..self.replication_factor)
            .map(|i| (home + i) % self.nodes)
            .collect()
    }

    /// Mean arrivals per second implied by the offered load and the mean
    /// update size.
    pub fn arrival_rate_per_sec(&self) -> f64 {
        assert!(self.offered_gbps > 0.0, "offered load must be positive");
        self.offered_gbps * 1e9 / (self.mean_bytes * 8.0)
    }

    /// Generates the first `count` arrivals of the open-loop schedule:
    /// exponential inter-arrival gaps at [`Self::arrival_rate_per_sec`],
    /// shards drawn uniformly, sizes log-normal (clamped to the
    /// configured range).
    pub fn generate(&self, count: usize) -> Vec<ShardArrival> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rate = self.arrival_rate_per_sec();
        let mu = self.median_bytes.ln();
        assert!(
            self.mean_bytes > self.median_bytes,
            "log-normal mean must exceed the median"
        );
        let sigma = (2.0 * (self.mean_bytes / self.median_bytes).ln()).sqrt();
        let mut at_ns = 0u64;
        (0..count)
            .map(|_| {
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                let gap_s = -u.ln() / rate;
                at_ns += (gap_s * 1e9) as u64;
                let shard = rng.random_range(0..self.shards);
                let size = sample_lognormal(&mut rng, mu, sigma)
                    .clamp(self.min_bytes as f64, self.max_bytes as f64)
                    as u64;
                ShardArrival { at_ns, shard, size }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let w = ShardedWorkload::default();
        assert_eq!(w.generate(200), w.generate(200));
        let other = ShardedWorkload {
            seed: 9,
            ..ShardedWorkload::default()
        };
        assert_ne!(w.generate(200), other.generate(200));
    }

    #[test]
    fn arrivals_are_ordered_and_in_range() {
        let w = ShardedWorkload::default();
        let arrivals = w.generate(2_000);
        for pair in arrivals.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns);
        }
        for a in &arrivals {
            assert!(a.shard < w.shards);
            assert!((w.min_bytes..=w.max_bytes).contains(&a.size));
        }
    }

    #[test]
    fn realized_rate_tracks_the_offered_load() {
        let w = ShardedWorkload::default();
        let arrivals = w.generate(20_000);
        let span_s = arrivals.last().unwrap().at_ns as f64 / 1e9;
        let rate = arrivals.len() as f64 / span_s;
        let expected = w.arrival_rate_per_sec();
        assert!(
            (rate / expected - 1.0).abs() < 0.05,
            "empirical {rate}/s vs configured {expected}/s"
        );
    }

    #[test]
    fn doubling_load_halves_the_span() {
        let base = ShardedWorkload::default();
        let double = base.with_load(base.offered_gbps * 2.0);
        let a = base.generate(5_000);
        let b = double.generate(5_000);
        let ratio = a.last().unwrap().at_ns as f64 / b.last().unwrap().at_ns as f64;
        assert!((ratio - 2.0).abs() < 0.05, "span ratio {ratio}");
    }

    #[test]
    fn shard_layout_spreads_roots_and_overlaps() {
        let w = ShardedWorkload::default(); // 16 nodes, 8 shards, rf 3
        let layouts: Vec<Vec<usize>> = (0..w.shards).map(|s| w.members(s)).collect();
        // Distinct roots, evenly spread.
        let roots: Vec<usize> = layouts.iter().map(|m| m[0]).collect();
        assert_eq!(roots, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        // rf=3 on stride-2 homes: consecutive shards share one node.
        for s in 0..w.shards {
            let next = &layouts[(s + 1) % w.shards];
            assert!(
                layouts[s].iter().any(|n| next.contains(n)),
                "shards {s} and {} do not overlap",
                (s + 1) % w.shards
            );
        }
        // Every member is a valid node.
        for m in layouts.iter().flatten() {
            assert!(*m < w.nodes);
        }
    }

    #[test]
    fn wrap_around_layout_is_valid() {
        let w = ShardedWorkload {
            nodes: 5,
            shards: 5,
            replication_factor: 3,
            ..ShardedWorkload::default()
        };
        for s in 0..5 {
            let m = w.members(s);
            assert_eq!(m.len(), 3);
            let mut d = m.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "duplicate member in {m:?}");
        }
    }
}
