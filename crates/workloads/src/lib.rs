//! # workloads — evaluation workload generators
//!
//! Deterministic, seedable generators for the traffic patterns the RDMC
//! paper evaluates on:
//!
//! - [`CosmosTrace`] — the proprietary Microsoft Cosmos replication trace
//!   of Fig. 9, resynthesised from its published statistics (3-node
//!   writes, log-normal sizes with 12 MB median / 29 MB mean, 15 replica
//!   hosts, 455 pre-created groups).
//! - [`ShardedWorkload`] — the Derecho-style multi-tenant deployment:
//!   overlapping shard groups on one fabric, driven by an open-loop
//!   exponential arrival process at a configured offered load.
//! - [`stats`] — percentile/CDF helpers for reporting distributions.
//!
//! ## Example
//!
//! ```
//! use workloads::CosmosTrace;
//!
//! let trace = CosmosTrace::default();
//! let writes = trace.generate(100);
//! assert_eq!(writes.len(), 100);
//! assert!(writes.iter().all(|w| w.targets.len() == 3));
//! assert_eq!(trace.all_groups().len(), 455);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cosmos;
mod shards;
pub mod stats;

pub use cosmos::{CosmosTrace, CosmosWrite};
pub use shards::{ShardArrival, ShardedWorkload};
