//! Synthetic stand-in for the Microsoft Cosmos replication trace
//! (paper §5.2.2, Fig. 9).
//!
//! The original trace is proprietary; the paper publishes its vital
//! statistics: several million 3-node writes with random target nodes,
//! object sizes from hundreds of bytes to hundreds of megabytes, a
//! **median of 12 MB** and a **mean of 29 MB**, replayed against 15
//! replica hosts (all C(15,3) = 455 possible target groups pre-created).
//!
//! A log-normal distribution is the standard fit for such heavy-tailed
//! object sizes and is fully determined by the published median and mean:
//! `median = exp(mu)` and `mean = exp(mu + sigma^2 / 2)` give
//! `mu = ln(median)` and `sigma = sqrt(2 ln(mean/median))`. Samples are
//! clamped to the published range.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One replicated write from the synthetic trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CosmosWrite {
    /// Object size in bytes.
    pub size: u64,
    /// The target replica nodes (distinct indices into the replica pool).
    pub targets: Vec<usize>,
}

/// Generator configuration; defaults reproduce the paper's published
/// statistics.
#[derive(Clone, Debug)]
pub struct CosmosTrace {
    /// RNG seed (the trace is deterministic given the seed).
    pub seed: u64,
    /// Number of replica hosts objects are written to (15 on Fractus).
    pub replica_pool: usize,
    /// Replicas per write (3 in the trace).
    pub replication_factor: usize,
    /// Median object size in bytes.
    pub median_bytes: f64,
    /// Mean object size in bytes.
    pub mean_bytes: f64,
    /// Smallest object ("hundreds of bytes").
    pub min_bytes: u64,
    /// Largest object ("hundreds of MB").
    pub max_bytes: u64,
}

impl Default for CosmosTrace {
    fn default() -> Self {
        CosmosTrace {
            seed: 0xC05,
            replica_pool: 15,
            replication_factor: 3,
            median_bytes: 12e6,
            mean_bytes: 29e6,
            min_bytes: 200,
            max_bytes: 500_000_000,
        }
    }
}

impl CosmosTrace {
    /// Log-normal `mu` implied by the configured median.
    pub fn mu(&self) -> f64 {
        self.median_bytes.ln()
    }

    /// Log-normal `sigma` implied by the configured median and mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= median` (a log-normal's mean always exceeds its
    /// median).
    pub fn sigma(&self) -> f64 {
        assert!(
            self.mean_bytes > self.median_bytes,
            "log-normal mean must exceed the median"
        );
        (2.0 * (self.mean_bytes / self.median_bytes).ln()).sqrt()
    }

    /// Generates `count` writes.
    ///
    /// # Panics
    ///
    /// Panics if the replication factor exceeds the replica pool.
    pub fn generate(&self, count: usize) -> Vec<CosmosWrite> {
        assert!(
            self.replication_factor <= self.replica_pool,
            "cannot pick {} distinct replicas from a pool of {}",
            self.replication_factor,
            self.replica_pool
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mu = self.mu();
        let sigma = self.sigma();
        (0..count)
            .map(|_| {
                let size = sample_lognormal(&mut rng, mu, sigma)
                    .clamp(self.min_bytes as f64, self.max_bytes as f64)
                    as u64;
                let targets = sample_distinct(&mut rng, self.replica_pool, self.replication_factor);
                CosmosWrite { size, targets }
            })
            .collect()
    }

    /// All distinct target groups the trace can produce, in a canonical
    /// order — the paper pre-creates every one of them (455 for 15 choose
    /// 3) so group setup stays off the critical path.
    pub fn all_groups(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut combo = Vec::new();
        combinations(
            0,
            self.replica_pool,
            self.replication_factor,
            &mut combo,
            &mut out,
        );
        out
    }
}

fn combinations(
    start: usize,
    pool: usize,
    remaining: usize,
    combo: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if remaining == 0 {
        out.push(combo.clone());
        return;
    }
    for i in start..=pool - remaining {
        combo.push(i);
        combinations(i + 1, pool, remaining - 1, combo, out);
        combo.pop();
    }
}

/// One log-normal sample via Box–Muller (no external distribution crate).
pub(crate) fn sample_lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// `k` distinct values from `0..pool` (partial Fisher–Yates).
fn sample_distinct(rng: &mut StdRng, pool: usize, k: usize) -> Vec<usize> {
    let mut items: Vec<usize> = (0..pool).collect();
    for i in 0..k {
        let j = rng.random_range(i..pool);
        items.swap(i, j);
    }
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_matches_published_statistics() {
        let t = CosmosTrace::default();
        // sigma^2 = 2 ln(29/12) ~= 1.764
        assert!((t.sigma().powi(2) - 2.0 * (29.0f64 / 12.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn generated_sizes_have_the_right_median_and_mean() {
        let trace = CosmosTrace::default().generate(40_000);
        let mut sizes: Vec<u64> = trace.iter().map(|w| w.size).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64;
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        assert!(
            (median / 12e6 - 1.0).abs() < 0.1,
            "median {median} vs published 12 MB"
        );
        // Clamping the far tail pulls the mean down slightly.
        assert!(
            (mean / 29e6 - 1.0).abs() < 0.2,
            "mean {mean} vs published 29 MB"
        );
    }

    #[test]
    fn sizes_respect_bounds() {
        let t = CosmosTrace {
            min_bytes: 1_000,
            max_bytes: 1_000_000,
            ..CosmosTrace::default()
        };
        for w in t.generate(5_000) {
            assert!((1_000..=1_000_000).contains(&w.size));
        }
    }

    #[test]
    fn targets_are_distinct_and_in_pool() {
        for w in CosmosTrace::default().generate(2_000) {
            assert_eq!(w.targets.len(), 3);
            let mut t = w.targets.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 3, "duplicate target in {:?}", w.targets);
            assert!(t.iter().all(|&x| x < 15));
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = CosmosTrace::default().generate(100);
        let b = CosmosTrace::default().generate(100);
        assert_eq!(a, b);
        let c = CosmosTrace {
            seed: 7,
            ..CosmosTrace::default()
        }
        .generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn all_groups_is_15_choose_3() {
        let groups = CosmosTrace::default().all_groups();
        assert_eq!(groups.len(), 455);
        // Canonical, sorted, distinct.
        for g in &groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn every_generated_group_exists_in_all_groups() {
        let t = CosmosTrace::default();
        let groups = t.all_groups();
        for w in t.generate(500) {
            let mut key = w.targets.clone();
            key.sort_unstable();
            assert!(groups.contains(&key));
        }
    }
}
