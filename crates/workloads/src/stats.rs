//! Small statistics helpers for summarising experiment output (latency
//! distributions, CDFs for Fig. 9, percentile tables).

/// A percentile of `values` using nearest-rank interpolation.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of nothing");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of nothing");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Evenly spaced CDF points `(value, fraction)` suitable for plotting a
/// latency distribution like the paper's Fig. 9.
///
/// # Panics
///
/// Panics if `values` is empty or `points == 0`.
pub fn cdf(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    assert!(!values.is_empty() && points > 0);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in cdf input"));
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((frac * sorted.len() as f64).ceil() as usize).min(sorted.len()) - 1;
            (sorted[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 51.0); // nearest rank on 0..99
    }

    #[test]
    fn mean_is_arithmetic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let c = cdf(&v, 10);
        assert_eq!(c.len(), 10);
        assert_eq!(c.last().unwrap(), &(5.0, 1.0));
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_percentile_panics() {
        percentile(&[], 50.0);
    }
}
