//! The shared state table itself: Derecho's core primitive (paper §4.6
//! and [9]).
//!
//! Every member owns one *row* of `u64` cells and replicates it into
//! every peer's copy with one-sided RDMA writes; nobody ever writes
//! another member's row. Reads are purely local. Protocols are built by
//! polling *monotone predicates* over the table — e.g. "the minimum of
//! column `c` across all rows reached `k`" — which is how Derecho layers
//! stability tracking, commit, and view changes over RDMC.
//!
//! [`SstTable`] is the sans-IO replica (update locally, encode the wire
//! write, apply remote writes); [`SstCluster`] drives a set of replicas
//! over the simulated verbs fabric for tests and experiments.

use bytes::Bytes;
use simnet::SimTime;
use verbs::{Delivery, Fabric, NodeId, QpHandle, WrId};

/// One-sided-write tag for table row updates.
const TAG_TABLE: u64 = 200;

/// One member's replica of the shared state table.
///
/// # Examples
///
/// ```
/// use sst::SstTable;
///
/// let mut mine = SstTable::new(0, 3, 2);
/// let mut yours = SstTable::new(1, 3, 2);
/// let update = mine.set_local(1, 42);
/// yours.apply_remote(0, &update);
/// assert_eq!(yours.get(0, 1), 42);
/// assert_eq!(yours.min_column(1), 0); // rows 1 and 2 still at zero
/// ```
#[derive(Clone, Debug)]
pub struct SstTable {
    rank: u32,
    rows: u32,
    columns: u32,
    /// Row-major `rows x columns` cells.
    cells: Vec<u64>,
}

impl SstTable {
    /// A zeroed table of `rows x columns`, owned-row = `rank`.
    ///
    /// # Panics
    ///
    /// Panics on a zero dimension or an out-of-range rank.
    pub fn new(rank: u32, rows: u32, columns: u32) -> Self {
        assert!(rows >= 1 && columns >= 1, "table needs dimensions");
        assert!(rank < rows, "rank outside the table");
        SstTable {
            rank,
            rows,
            columns,
            cells: vec![0; (rows * columns) as usize],
        }
    }

    /// This replica's (writable) row index.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of rows (= members).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Reads a cell (always local — that is the point of an SST).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: u32, col: u32) -> u64 {
        assert!(row < self.rows && col < self.columns, "cell out of range");
        self.cells[(row * self.columns + col) as usize]
    }

    /// Updates a cell of *our* row and returns the encoded one-sided
    /// write to push to every peer.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn set_local(&mut self, col: u32, val: u64) -> Vec<u8> {
        assert!(col < self.columns, "column out of range");
        self.cells[(self.rank * self.columns + col) as usize] = val;
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&col.to_le_bytes());
        payload.extend_from_slice(&val.to_le_bytes());
        payload
    }

    /// Applies a peer's row update (the payload produced by its
    /// [`SstTable::set_local`]).
    ///
    /// # Panics
    ///
    /// Panics on a malformed payload, an out-of-range row, or an attempt
    /// to write our own row (rows are single-writer by construction).
    pub fn apply_remote(&mut self, from_row: u32, payload: &[u8]) {
        assert!(from_row < self.rows, "row out of range");
        assert_ne!(from_row, self.rank, "peers cannot write our row");
        let col = u32::from_le_bytes(payload[..4].try_into().expect("payload col"));
        let val = u64::from_le_bytes(payload[4..12].try_into().expect("payload val"));
        assert!(col < self.columns, "column out of range");
        self.cells[(from_row * self.columns + col) as usize] = val;
    }

    /// Minimum of a column across all rows — the workhorse aggregate for
    /// stability tracking ("everyone has at least k").
    pub fn min_column(&self, col: u32) -> u64 {
        (0..self.rows)
            .map(|r| self.get(r, col))
            .min()
            .expect("rows >= 1")
    }

    /// Maximum of a column across all rows.
    pub fn max_column(&self, col: u32) -> u64 {
        (0..self.rows)
            .map(|r| self.get(r, col))
            .max()
            .expect("rows >= 1")
    }

    /// Sum of a column across all rows.
    pub fn sum_column(&self, col: u32) -> u64 {
        (0..self.rows).map(|r| self.get(r, col)).sum()
    }
}

/// A set of SST replicas over the simulated fabric, fully connected with
/// one queue pair per member pair. Drives updates to convergence and
/// evaluates predicates, for tests and experiments.
pub struct SstCluster {
    fabric: Fabric,
    tables: Vec<SstTable>,
    /// `qps[a][b]` = a's endpoint toward b (None on the diagonal).
    qps: Vec<Vec<Option<QpHandle>>>,
}

impl SstCluster {
    /// Builds `members.len()` replicas with `columns` columns over
    /// `fabric`, wiring the full mesh.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two members are given.
    pub fn new(mut fabric: Fabric, members: &[usize], columns: u32) -> Self {
        assert!(members.len() >= 2, "an SST needs at least two members");
        let n = members.len();
        let tables = (0..n)
            .map(|r| SstTable::new(r as u32, n as u32, columns))
            .collect();
        let mut qps: Vec<Vec<Option<QpHandle>>> = vec![vec![None; n]; n];
        for a in 0..n {
            for b in a + 1..n {
                let (qa, qb) = fabric.connect(NodeId(members[a] as u32), NodeId(members[b] as u32));
                qps[a][b] = Some(qa);
                qps[b][a] = Some(qb);
            }
        }
        SstCluster {
            fabric,
            tables,
            qps,
        }
    }

    /// Member `rank`'s local replica.
    pub fn table(&self, rank: usize) -> &SstTable {
        &self.tables[rank]
    }

    /// Member `rank` sets a cell of its row; the update is pushed to
    /// every peer (in flight until [`SstCluster::run_until`] drains it).
    pub fn set(&mut self, rank: usize, col: u32, val: u64) {
        let payload = Bytes::from(self.tables[rank].set_local(col, val));
        for peer in 0..self.tables.len() {
            if peer == rank {
                continue;
            }
            let qp = self.qps[rank][peer].expect("mesh is complete");
            let _ = self
                .fabric
                .post_write(qp, WrId(val), TAG_TABLE, payload.clone(), None);
        }
    }

    /// Processes fabric events until `predicate` holds (checked after
    /// every table change) or the fabric quiesces. Returns the time the
    /// predicate first held.
    pub fn run_until(&mut self, mut predicate: impl FnMut(&[SstTable]) -> bool) -> Option<SimTime> {
        if predicate(&self.tables) {
            return Some(self.fabric.now());
        }
        while let Some((t, _node, delivery)) = self.fabric.advance() {
            if self.apply(delivery) && predicate(&self.tables) {
                return Some(t);
            }
        }
        None
    }

    /// Drains all in-flight updates (convergence barrier).
    pub fn quiesce(&mut self) {
        while let Some((_, _, delivery)) = self.fabric.advance() {
            self.apply(delivery);
        }
    }

    /// Applies one fabric delivery to the tables; true if a cell changed.
    fn apply(&mut self, delivery: Delivery) -> bool {
        if let Delivery::WriteArrived { qp, tag, payload } = delivery {
            if tag == TAG_TABLE {
                let me = self.owner_of(qp);
                let from = self.peer_of(qp);
                self.tables[me].apply_remote(from as u32, &payload);
                return true;
            }
        }
        false
    }

    fn owner_of(&self, qp: QpHandle) -> usize {
        for (a, row) in self.qps.iter().enumerate() {
            if row.contains(&Some(qp)) {
                return a;
            }
        }
        panic!("qp does not belong to the mesh");
    }

    fn peer_of(&self, qp: QpHandle) -> usize {
        let a = self.owner_of(qp);
        self.qps[a]
            .iter()
            .position(|&q| q == Some(qp))
            .expect("qp indexed by peer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{FlowNet, SimDuration, Topology};
    use verbs::FabricParams;

    fn cluster(n: usize, columns: u32) -> SstCluster {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 100.0, SimDuration::from_micros(2));
        let fabric = Fabric::new(net, topo, FabricParams::default());
        SstCluster::new(fabric, &(0..n).collect::<Vec<_>>(), columns)
    }

    #[test]
    fn local_reads_reflect_local_writes_immediately() {
        let mut t = SstTable::new(2, 4, 3);
        t.set_local(1, 9);
        assert_eq!(t.get(2, 1), 9);
        assert_eq!(t.get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "peers cannot write our row")]
    fn single_writer_rows_are_enforced() {
        let mut t = SstTable::new(1, 3, 1);
        let p = SstTable::new(0, 3, 1).set_local(0, 5);
        t.apply_remote(1, &p);
    }

    #[test]
    fn updates_replicate_to_every_member() {
        let mut c = cluster(4, 2);
        c.set(1, 0, 7);
        c.set(3, 1, 11);
        c.quiesce();
        for rank in 0..4 {
            assert_eq!(c.table(rank).get(1, 0), 7, "rank {rank}");
            assert_eq!(c.table(rank).get(3, 1), 11, "rank {rank}");
        }
    }

    #[test]
    fn last_write_wins_per_cell() {
        let mut c = cluster(3, 1);
        for v in 1..=5 {
            c.set(0, 0, v);
        }
        c.quiesce();
        for rank in 0..3 {
            assert_eq!(c.table(rank).get(0, 0), 5, "rank {rank}");
        }
    }

    #[test]
    fn min_column_barrier() {
        // A classic SST barrier: everyone bumps column 0 to 1; the
        // predicate "min of column 0 >= 1" fires only after the last
        // member's update replicates.
        let mut c = cluster(5, 1);
        for rank in 0..5 {
            c.set(rank, 0, 1);
        }
        let t = c
            .run_until(|tables| tables.iter().all(|t| t.min_column(0) >= 1))
            .expect("barrier reached");
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn stability_tracking_shape() {
        // The §4.6 pattern: column 0 holds each member's received-count;
        // min over the column is the stability frontier.
        let mut c = cluster(3, 1);
        c.set(0, 0, 4);
        c.set(1, 0, 6);
        c.set(2, 0, 5);
        c.quiesce();
        for rank in 0..3 {
            assert_eq!(c.table(rank).min_column(0), 4);
            assert_eq!(c.table(rank).max_column(0), 6);
            assert_eq!(c.table(rank).sum_column(0), 15);
        }
    }

    #[test]
    fn predicate_observes_monotone_convergence() {
        let mut c = cluster(4, 1);
        for rank in 0..4 {
            c.set(rank, 0, rank as u64 + 1);
        }
        // min rises monotonically as updates land.
        let mut last_min = 0;
        c.run_until(|tables| {
            let m = tables[0].min_column(0);
            assert!(m >= last_min, "min went backwards");
            last_min = m;
            false // run to quiescence, checking monotonicity throughout
        });
        assert_eq!(c.table(0).min_column(0), 1);
    }
}
