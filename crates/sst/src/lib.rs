//! # sst — shared-state-table small-message multicast
//!
//! The comparator of the paper's §4.6: Derecho layers a *shared state
//! table* (SST) over one-sided RDMA writes, and multicasts small messages
//! by writing them straight into round-robin bounded buffers at every
//! receiver — no per-block handshakes, no relaying. That wins for small
//! messages in small groups (the paper reports up to ~5x over RDMC for
//! ≤ 16 members and ≤ 10 KB) and loses to the binomial pipeline beyond,
//! because the sender's NIC carries `n − 1` copies of every byte.
//!
//! [`SstTable`] is the shared state table itself — single-writer rows of
//! `u64` cells replicated by one-sided writes, read locally, driven by
//! monotone predicates (how Derecho layers stability tracking and commit
//! over RDMC). [`SstMulticast`] implements the small-message protocol
//! over the simulated verbs fabric; [`small_message_rate`] is the
//! one-call benchmark harness the `sst_small_messages` bench sweeps
//! against RDMC.
//!
//! [`ViewTracker`] layers the membership service the paper's §2.4
//! assumes over the same rows: epidemic failure-suspicion agreement and
//! monotone epoch installation, used by `rdmc-sim`'s recovery
//! orchestration to reconfigure wedged groups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod membership;
mod multicast;
mod table;

pub use membership::{View, ViewTracker};
pub use multicast::{small_message_rate, SstMessageResult, SstMulticast};
pub use table::{SstCluster, SstTable};
