//! The small-message multicast the paper contrasts RDMC against (§4.6):
//! Derecho's SST protocol of one-sided RDMA writes into round-robin
//! bounded buffers, one per receiver.
//!
//! The sender owns `slots` buffer slots at every receiver. To multicast,
//! it writes the message (data + sequence counter in one ordered RDMA
//! write) into slot `seq % slots` of each receiver, with no handshake at
//! all. Receivers discover arrivals by polling the counter — modelled by
//! the fabric's `WriteArrived` notification — and periodically write an
//! acknowledgement counter back so the sender never overruns the ring.
//!
//! The paper reports this beats RDMC by up to ~5x for groups of ≤ 16 and
//! messages of ≤ 10 KB, while RDMC's binomial pipeline dominates for
//! larger groups or messages — the crossover this crate's benchmark
//! regenerates.

use std::collections::VecDeque;

use bytes::Bytes;
use simnet::{SimDuration, SimTime};
use verbs::{Delivery, Fabric, NodeId, QpHandle, WrId};

/// One-sided-write tag for message slots.
const TAG_DATA: u64 = 100;
/// One-sided-write tag for acknowledgement counters.
const TAG_ACK: u64 = 101;

/// How often a receiver pushes its consumption counter back (in
/// messages); a fraction of the ring so the sender never stalls on a
/// full window in steady state.
fn ack_interval(slots: u64) -> u64 {
    (slots / 4).max(1)
}

/// Per-message completion record.
#[derive(Clone, Debug)]
pub struct SstMessageResult {
    /// Sequence number (send order).
    pub seq: u64,
    /// When the sender submitted it.
    pub submitted: SimTime,
    /// When the last receiver observed it.
    pub completed: Option<SimTime>,
}

/// A root-sender SST multicast session over a simulated fabric.
///
/// # Examples
///
/// ```
/// use simnet::{FlowNet, SimDuration, Topology};
/// use sst::SstMulticast;
/// use verbs::{Fabric, FabricParams};
///
/// let mut net = FlowNet::new();
/// let topo = Topology::flat(&mut net, 4, 100.0, SimDuration::from_micros(2));
/// let fabric = Fabric::new(net, topo, FabricParams::default());
/// let mut sst = SstMulticast::new(fabric, &[0, 1, 2, 3], 16);
/// for _ in 0..100 {
///     sst.submit(1024);
/// }
/// sst.run();
/// assert_eq!(sst.results().len(), 100);
/// assert!(sst.results().iter().all(|r| r.completed.is_some()));
/// ```
pub struct SstMulticast {
    fabric: Fabric,
    /// `members[0]` is the sender.
    members: Vec<usize>,
    /// Sender-side queue pair per receiver (index 1..members.len()).
    qps: Vec<QpHandle>,
    /// Receiver-side queue pairs (same order), for acks.
    receiver_qps: Vec<QpHandle>,
    slots: u64,
    /// Messages waiting for a free slot.
    pending: VecDeque<u64>,
    /// Next sequence number to send.
    next_seq: u64,
    /// Lowest acknowledged sequence per receiver.
    acked: Vec<u64>,
    /// Consumed count per receiver (receiver side).
    consumed: Vec<u64>,
    /// Receivers that have seen each in-flight message.
    seen: Vec<u32>,
    results: Vec<SstMessageResult>,
}

impl SstMulticast {
    /// Creates the session: connects the sender to every receiver and
    /// sizes the per-receiver ring at `slots` messages.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two members or zero slots are given.
    pub fn new(mut fabric: Fabric, members: &[usize], slots: u64) -> Self {
        assert!(
            members.len() >= 2,
            "need a sender and at least one receiver"
        );
        assert!(slots >= 1, "need at least one buffer slot");
        let sender = NodeId(members[0] as u32);
        let mut qps = Vec::new();
        let mut receiver_qps = Vec::new();
        for &m in &members[1..] {
            let (qs, qr) = fabric.connect(sender, NodeId(m as u32));
            qps.push(qs);
            receiver_qps.push(qr);
        }
        SstMulticast {
            fabric,
            members: members.to_vec(),
            qps,
            receiver_qps,
            slots,
            pending: VecDeque::new(),
            next_seq: 0,
            acked: vec![0; members.len() - 1],
            consumed: vec![0; members.len() - 1],
            seen: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Number of receivers.
    pub fn num_receivers(&self) -> usize {
        self.members.len() - 1
    }

    /// Queues a message of `size` bytes for multicast.
    pub fn submit(&mut self, size: u64) {
        self.pending.push_back(size);
        self.pump();
    }

    /// Sends while ring slots are free at every receiver.
    fn pump(&mut self) {
        while let Some(&size) = self.pending.front() {
            let window_ok = self.acked.iter().all(|&a| self.next_seq - a < self.slots);
            if !window_ok {
                return;
            }
            self.pending.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            self.seen.push(0);
            self.results.push(SstMessageResult {
                seq,
                submitted: self.fabric.now(),
                completed: None,
            });
            // One ordered write per receiver: payload models data plus the
            // trailing sequence counter.
            let payload = Bytes::from(vec![0u8; size.max(1) as usize]);
            for qp in self.qps.clone() {
                // A broken connection just stops the experiment's traffic;
                // SST has no retry of its own (RC hardware handles it).
                let _ = self
                    .fabric
                    .post_write(qp, WrId(seq), TAG_DATA, payload.clone(), None);
            }
        }
    }

    /// Runs the fabric to quiescence, processing arrivals and acks.
    pub fn run(&mut self) {
        while let Some((time, _node, delivery)) = self.fabric.advance() {
            match delivery {
                Delivery::WriteArrived { qp, tag, .. } if tag == TAG_DATA => {
                    let r = self
                        .receiver_qps
                        .iter()
                        .position(|&q| q == qp)
                        .expect("data write on unknown qp");
                    let seq = self.consumed[r];
                    self.consumed[r] += 1;
                    self.seen[seq as usize] += 1;
                    if self.seen[seq as usize] == self.num_receivers() as u32 {
                        self.results[seq as usize].completed = Some(time);
                    }
                    // Batched acknowledgement write-back.
                    if self.consumed[r].is_multiple_of(ack_interval(self.slots)) {
                        let counter = self.consumed[r];
                        let _ = self.fabric.post_write(
                            self.receiver_qps[r],
                            WrId(counter),
                            TAG_ACK,
                            Bytes::copy_from_slice(&counter.to_le_bytes()),
                            None,
                        );
                    }
                }
                Delivery::WriteArrived { qp, tag, payload } if tag == TAG_ACK => {
                    let r = self
                        .qps
                        .iter()
                        .position(|&q| q == qp)
                        .expect("ack on unknown qp");
                    let counter = u64::from_le_bytes(payload[..8].try_into().expect("ack payload"));
                    self.acked[r] = self.acked[r].max(counter);
                    self.pump();
                }
                _ => {}
            }
        }
        // Tail: acks for the last partial batch never fire; that is fine —
        // delivery completion is tracked by arrival, not by ack.
    }

    /// Completion records in send order.
    pub fn results(&self) -> &[SstMessageResult] {
        &self.results
    }

    /// Sustained message rate over the whole run, in messages/second.
    ///
    /// # Panics
    ///
    /// Panics if no message completed.
    pub fn messages_per_second(&self) -> f64 {
        let done = self
            .results
            .iter()
            .filter_map(|r| r.completed)
            .max()
            .expect("no completed messages");
        let count = self
            .results
            .iter()
            .filter(|r| r.completed.is_some())
            .count();
        count as f64 / done.as_secs_f64().max(1e-12)
    }

    /// The underlying fabric (for CPU or link accounting).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

/// Convenience: messages/second for a stream of `count` equal-size
/// messages from one sender to `group_size - 1` receivers on a fresh
/// flat 100 Gb/s fabric (the Fractus-like setup of §4.6).
pub fn small_message_rate(group_size: usize, msg_bytes: u64, count: usize, slots: u64) -> f64 {
    let mut net = simnet::FlowNet::new();
    let topo = simnet::Topology::flat(&mut net, group_size, 100.0, SimDuration::from_micros(2));
    let fabric = Fabric::new(net, topo, verbs::FabricParams::default());
    let members: Vec<usize> = (0..group_size).collect();
    let mut sst = SstMulticast::new(fabric, &members, slots);
    for _ in 0..count {
        sst.submit(msg_bytes);
    }
    sst.run();
    sst.messages_per_second()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{FlowNet, Topology};
    use verbs::FabricParams;

    fn fabric(n: usize) -> Fabric {
        let mut net = FlowNet::new();
        let topo = Topology::flat(&mut net, n, 100.0, SimDuration::from_micros(2));
        Fabric::new(net, topo, FabricParams::default())
    }

    #[test]
    fn every_message_reaches_every_receiver() {
        let mut sst = SstMulticast::new(fabric(8), &[0, 1, 2, 3, 4, 5, 6, 7], 8);
        for _ in 0..50 {
            sst.submit(100);
        }
        sst.run();
        assert_eq!(sst.results().len(), 50);
        assert!(sst.results().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn completions_are_in_order_and_after_submission() {
        let mut sst = SstMulticast::new(fabric(3), &[0, 1, 2], 4);
        for _ in 0..20 {
            sst.submit(64);
        }
        sst.run();
        let mut last = SimTime::ZERO;
        for r in sst.results() {
            let c = r.completed.unwrap();
            assert!(c >= r.submitted);
            assert!(c >= last, "out-of-order completion");
            last = c;
        }
    }

    #[test]
    fn ring_window_throttles_but_never_deadlocks() {
        // One slot: fully serialised by acks... except acks are batched;
        // with slots=1 the interval is 1, so it still progresses.
        let mut sst = SstMulticast::new(fabric(2), &[0, 1], 1);
        for _ in 0..10 {
            sst.submit(10);
        }
        sst.run();
        assert!(sst.results().iter().all(|r| r.completed.is_some()));
    }

    #[test]
    fn rate_degrades_linearly_with_group_size() {
        // SST is a sequential sender: doubling receivers roughly halves
        // the message rate once bandwidth-bound; for tiny messages it is
        // post-overhead bound, still roughly linear.
        let small = small_message_rate(4, 1024, 300, 16);
        let large = small_message_rate(16, 1024, 300, 16);
        assert!(small > large, "rate should fall with group size");
        assert!(
            small / large < 10.0,
            "degradation should be roughly linear, got {}x",
            small / large
        );
    }

    #[test]
    fn larger_messages_lower_the_rate() {
        let tiny = small_message_rate(4, 100, 200, 16);
        let big = small_message_rate(4, 1 << 20, 200, 16);
        assert!(tiny > big * 2.0, "tiny {tiny} vs big {big}");
    }
}
