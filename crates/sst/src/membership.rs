//! Membership views over the SST: epidemic failure agreement and epoch
//! installation (paper §2.4 and Derecho [9]).
//!
//! RDMC deliberately stops at the *wedge*: when a member detects a
//! failure it freezes the group and relays the notice, and §2.4 hands
//! the rest — agreeing on who failed, forming the next view, restarting
//! transfers — to an external membership service. This module is that
//! service, built the way Derecho builds it: over single-writer SST
//! rows and monotone predicates.
//!
//! Each member's row carries two cells: a **suspicion bitmask** (bit
//! `r` set = this member believes rank `r` failed) and an **installed
//! epoch**. Suspicions spread epidemically — every member unions every
//! row it can read into its own, so the masks grow monotonically and
//! converge even under cascading failures. A new view is *agreed* once
//! every unsuspected member publishes the identical mask: at that point
//! all survivors derive the same [`View`] (epoch, failed set, survivor
//! list) from purely local reads, install their new epoch, and the view
//! is *stable* once every survivor's installed-epoch cell catches up.
//!
//! The tracker is sans-IO like [`SstTable`] itself: local mutations
//! return encoded row updates for the caller to replicate; remote
//! updates are applied via [`ViewTracker::apply_remote`]. `rdmc-sim`
//! drives one per simulated node to orchestrate recovery.

use std::collections::BTreeSet;

use crate::table::SstTable;

/// Suspicion-bitmask column.
const COL_SUSPECT: u32 = 0;
/// Installed-epoch column.
const COL_EPOCH: u32 = 1;
/// First per-sender stability-frontier column (one per sender when the
/// tracker is built with [`ViewTracker::with_frontiers`]).
const COL_FRONTIER_BASE: u32 = 2;

/// An agreed membership view: the output of epidemic failure agreement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct View {
    /// Epoch number of this view (strictly increasing).
    pub epoch: u64,
    /// Ranks (in the *original* numbering) agreed to have failed.
    pub failed: BTreeSet<u32>,
    /// Surviving original ranks, ascending — the new epoch's rank order
    /// (new rank = index into this vector).
    pub members: Vec<u32>,
}

/// One member's membership tracker: an SST replica whose rows carry
/// suspicion masks and installed epochs.
///
/// # Examples
///
/// ```
/// use sst::ViewTracker;
///
/// let mut a = ViewTracker::new(0, 3);
/// let mut b = ViewTracker::new(1, 3);
/// // a suspects rank 2; the update replicates to b, which adopts it.
/// let up = a.suspect(2).expect("new suspicion");
/// let echo = b.apply_remote(0, &up).expect("b unions the suspicion in");
/// a.apply_remote(1, &echo);
/// // Both unsuspected members now publish identical masks: agreement.
/// let va = a.agreed_view().expect("a agrees");
/// let vb = b.agreed_view().expect("b agrees");
/// assert_eq!(va, vb);
/// assert_eq!(va.members, vec![0, 1]);
/// assert_eq!(va.epoch, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ViewTracker {
    table: SstTable,
}

impl ViewTracker {
    /// A tracker for rank `rank` in an initial view of `num_nodes`
    /// members, epoch 0, nobody suspected.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is 0 or exceeds 64 (masks are one `u64`
    /// cell), or if `rank` is out of range.
    pub fn new(rank: u32, num_nodes: u32) -> Self {
        assert!(num_nodes <= 64, "suspicion mask is a single u64 cell");
        ViewTracker {
            table: SstTable::new(rank, num_nodes, 2),
        }
    }

    /// Like [`ViewTracker::new`], but each row additionally carries
    /// `senders` **stability-frontier** cells: column `2 + j` of row `r`
    /// holds how many of sender `j`'s message slots member `r` has
    /// received (counted gaplessly from slot 0). Frontiers are monotone
    /// counters merged by `max`, exactly as Derecho's SST uses them —
    /// the min over live rows is the stability frontier that gates
    /// atomic delivery.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ViewTracker::new`].
    pub fn with_frontiers(rank: u32, num_nodes: u32, senders: u32) -> Self {
        assert!(num_nodes <= 64, "suspicion mask is a single u64 cell");
        ViewTracker {
            table: SstTable::new(rank, num_nodes, 2 + senders),
        }
    }

    /// Number of per-sender frontier columns this tracker carries
    /// (zero when built with [`ViewTracker::new`]).
    pub fn num_senders(&self) -> u32 {
        self.table.columns() - COL_FRONTIER_BASE
    }

    /// Raises our own received-frontier for `sender` to `count`.
    /// Returns the encoded row update to replicate, or `None` if the
    /// frontier already stood at `count` or beyond (frontiers are
    /// monotone; a stale advance is a no-op).
    ///
    /// # Panics
    ///
    /// Panics if `sender` has no frontier column.
    pub fn advance_frontier(&mut self, sender: u32, count: u64) -> Option<Vec<u8>> {
        assert!(
            sender < self.num_senders(),
            "sender {sender} has no frontier"
        );
        let me = self.table.rank();
        if self.table.get(me, COL_FRONTIER_BASE + sender) >= count {
            return None;
        }
        Some(self.table.set_local(COL_FRONTIER_BASE + sender, count))
    }

    /// Member `row`'s published received-frontier for `sender`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` has no frontier column.
    pub fn frontier(&self, row: u32, sender: u32) -> u64 {
        assert!(
            sender < self.num_senders(),
            "sender {sender} has no frontier"
        );
        self.table.get(row, COL_FRONTIER_BASE + sender)
    }

    /// Merges the knowledge that member `row` published a
    /// received-frontier of at least `count` for `sender` — the
    /// view-change state exchange: on a reconfiguration the survivors
    /// pool their replicas so everyone's picture of every row (in
    /// particular the *dead* rows, which will never publish again) is
    /// the union of what any survivor saw. Monotone max-merge; a no-op
    /// for our own row, which is single-writer and always freshest
    /// locally.
    ///
    /// # Panics
    ///
    /// Panics if `sender` has no frontier column.
    pub fn resync_frontier(&mut self, row: u32, sender: u32, count: u64) {
        assert!(
            sender < self.num_senders(),
            "sender {sender} has no frontier"
        );
        if row == self.table.rank() || self.table.get(row, COL_FRONTIER_BASE + sender) >= count {
            return;
        }
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&(COL_FRONTIER_BASE + sender).to_le_bytes());
        payload.extend_from_slice(&count.to_le_bytes());
        self.table.apply_remote(row, &payload);
    }

    /// The stability frontier for `sender`: the minimum received-frontier
    /// over the `live` rows. Every slot of `sender` below this count has
    /// been received by every live member, so delivering it can never be
    /// undone by a ragged trim.
    ///
    /// # Panics
    ///
    /// Panics if `live` is empty or `sender` has no frontier column.
    pub fn stable_frontier(&self, sender: u32, live: &[u32]) -> u64 {
        assert!(!live.is_empty(), "stability needs at least one live row");
        live.iter()
            .map(|&r| self.frontier(r, sender))
            .min()
            .expect("non-empty live set")
    }

    /// This member's original rank.
    pub fn rank(&self) -> u32 {
        self.table.rank()
    }

    /// The epoch this member has installed.
    pub fn installed_epoch(&self) -> u64 {
        self.table.get(self.table.rank(), COL_EPOCH)
    }

    /// Ranks this member currently suspects (its own row's mask — the
    /// epidemic union of everything it has observed).
    pub fn suspected(&self) -> BTreeSet<u32> {
        let mask = self.table.get(self.table.rank(), COL_SUSPECT);
        (0..self.table.rows())
            .filter(|r| mask >> r & 1 == 1)
            .collect()
    }

    /// Records a local suspicion that `rank` failed. Returns the encoded
    /// row update to replicate to every peer, or `None` if `rank` was
    /// already suspected (masks are monotone; re-suspecting is a no-op).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or is this member itself.
    pub fn suspect(&mut self, rank: u32) -> Option<Vec<u8>> {
        assert!(rank < self.table.rows(), "rank outside the view");
        assert_ne!(rank, self.table.rank(), "cannot suspect ourselves");
        let me = self.table.rank();
        let mask = self.table.get(me, COL_SUSPECT);
        let grown = mask | 1 << rank;
        if grown == mask {
            return None;
        }
        Some(self.table.set_local(COL_SUSPECT, grown))
    }

    /// Applies a peer's row update and unions any new suspicions into
    /// our own row (the epidemic step). Returns our own row's update to
    /// re-relay when the union taught us something new — forwarding it
    /// is what makes agreement reach members the failed node partitioned
    /// from the original suspecter.
    ///
    /// Both membership cells are monotone (masks only grow, epochs only
    /// rise), so the update is *merged* rather than overwritten: a stale
    /// payload delivered out of order can never regress a row.
    pub fn apply_remote(&mut self, from_rank: u32, payload: &[u8]) -> Option<Vec<u8>> {
        let col = u32::from_le_bytes(payload[..4].try_into().expect("payload col"));
        let val = u64::from_le_bytes(payload[4..12].try_into().expect("payload val"));
        let merged = match col {
            COL_SUSPECT => self.table.get(from_rank, COL_SUSPECT) | val,
            // Epochs and stability frontiers are both monotone counters:
            // merge by max so a reordered stale payload cannot regress.
            COL_EPOCH => self.table.get(from_rank, COL_EPOCH).max(val),
            c if c < self.table.columns() => self.table.get(from_rank, c).max(val),
            _ => panic!("unknown membership column {col}"),
        };
        let mut monotone = Vec::with_capacity(12);
        monotone.extend_from_slice(&col.to_le_bytes());
        monotone.extend_from_slice(&merged.to_le_bytes());
        self.table.apply_remote(from_rank, &monotone);
        let me = self.table.rank();
        let mine = self.table.get(me, COL_SUSPECT);
        let theirs = self.table.get(from_rank, COL_SUSPECT);
        let grown = mine | theirs;
        if grown == mine {
            return None;
        }
        Some(self.table.set_local(COL_SUSPECT, grown))
    }

    /// The agreed next view, if agreement has been reached: our mask is
    /// non-empty and every member we do *not* suspect publishes the
    /// identical mask. All survivors evaluate this predicate over local
    /// reads and derive byte-identical [`View`]s.
    pub fn agreed_view(&self) -> Option<View> {
        let me = self.table.rank();
        let mask = self.table.get(me, COL_SUSPECT);
        if mask == 0 || mask >> me & 1 == 1 {
            return None;
        }
        let survivors: Vec<u32> = (0..self.table.rows())
            .filter(|r| mask >> r & 1 == 0)
            .collect();
        if survivors
            .iter()
            .any(|&r| self.table.get(r, COL_SUSPECT) != mask)
        {
            return None;
        }
        // The next epoch outbids every epoch any survivor has installed,
        // so cascades (a second failure during recovery) keep advancing.
        let epoch = survivors
            .iter()
            .map(|&r| self.table.get(r, COL_EPOCH))
            .max()
            .expect("at least ourselves")
            + 1;
        Some(View {
            epoch,
            failed: (0..self.table.rows())
                .filter(|r| mask >> r & 1 == 1)
                .collect(),
            members: survivors,
        })
    }

    /// Publishes that this member installed `epoch`. Returns the encoded
    /// row update to replicate.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` would move our installed epoch backwards.
    pub fn install(&mut self, epoch: u64) -> Vec<u8> {
        assert!(
            epoch >= self.installed_epoch(),
            "epochs are monotone: cannot reinstall {epoch} over {}",
            self.installed_epoch()
        );
        self.table.set_local(COL_EPOCH, epoch)
    }

    /// True once every member of `view` publishes an installed epoch of
    /// at least `view.epoch` — the point at which the reconfiguration is
    /// complete and normal operation resumes.
    pub fn view_stable(&self, view: &View) -> bool {
        view.members
            .iter()
            .all(|&r| self.table.get(r, COL_EPOCH) >= view.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relays `payload` from `from` into every other live tracker,
    /// cascading any re-relay updates until quiescent — a synchronous
    /// stand-in for the fabric's epidemic spread.
    fn broadcast(trackers: &mut [Option<ViewTracker>], from: u32, payload: Vec<u8>) {
        let mut queue = vec![(from, payload)];
        while let Some((src, p)) = queue.pop() {
            for (i, slot) in trackers.iter_mut().enumerate() {
                if i as u32 == src {
                    continue;
                }
                let Some(t) = slot.as_mut() else {
                    continue;
                };
                if let Some(echo) = t.apply_remote(src, &p) {
                    queue.push((i as u32, echo));
                }
            }
        }
    }

    #[test]
    fn single_failure_reaches_agreement_everywhere() {
        let mut ts: Vec<Option<ViewTracker>> =
            (0..4).map(|r| Some(ViewTracker::new(r, 4))).collect();
        ts[2] = None; // rank 2 crashes
        let up = ts[1].as_mut().unwrap().suspect(2).unwrap();
        broadcast(&mut ts, 1, up);
        let expect = View {
            epoch: 1,
            failed: [2].into_iter().collect(),
            members: vec![0, 1, 3],
        };
        for t in ts.iter().flatten() {
            assert_eq!(t.agreed_view(), Some(expect.clone()), "rank {}", t.rank());
        }
    }

    #[test]
    fn no_agreement_until_suspicion_replicates() {
        let mut a = ViewTracker::new(0, 3);
        assert_eq!(a.agreed_view(), None, "empty mask is not a view change");
        a.suspect(2);
        // b's row still shows an empty mask: not agreed yet.
        assert_eq!(a.agreed_view(), None);
    }

    #[test]
    fn concurrent_suspicions_union_to_one_view() {
        // Ranks 0 and 3 independently suspect different members; the
        // epidemic union converges everyone on {1, 2} failed.
        let mut ts: Vec<Option<ViewTracker>> =
            (0..5).map(|r| Some(ViewTracker::new(r, 5))).collect();
        ts[1] = None;
        ts[2] = None;
        let up0 = ts[0].as_mut().unwrap().suspect(1).unwrap();
        let up3 = ts[3].as_mut().unwrap().suspect(2).unwrap();
        broadcast(&mut ts, 0, up0);
        broadcast(&mut ts, 3, up3);
        for t in ts.iter().flatten() {
            let v = t.agreed_view().expect("agreed");
            assert_eq!(v.failed, [1, 2].into_iter().collect());
            assert_eq!(v.members, vec![0, 3, 4]);
            assert_eq!(v.epoch, 1);
        }
    }

    #[test]
    fn cascading_failure_bumps_the_epoch_again() {
        let mut ts: Vec<Option<ViewTracker>> =
            (0..4).map(|r| Some(ViewTracker::new(r, 4))).collect();
        ts[3] = None;
        let up = ts[0].as_mut().unwrap().suspect(3).unwrap();
        broadcast(&mut ts, 0, up);
        let v1 = ts[0].as_ref().unwrap().agreed_view().unwrap();
        assert_eq!(v1.epoch, 1);
        // Everyone installs epoch 1 ...
        for r in [0u32, 1, 2] {
            let up = ts[r as usize].as_mut().unwrap().install(1);
            broadcast(&mut ts, r, up);
        }
        for t in ts.iter().flatten() {
            assert!(t.view_stable(&v1), "rank {}", t.rank());
        }
        // ... then rank 1 dies during the new epoch.
        ts[1] = None;
        let up = ts[2].as_mut().unwrap().suspect(1).unwrap();
        broadcast(&mut ts, 2, up);
        let v2 = ts[0].as_ref().unwrap().agreed_view().unwrap();
        assert_eq!(v2.epoch, 2, "outbids the installed epoch");
        assert_eq!(v2.failed, [1, 3].into_iter().collect());
        assert_eq!(v2.members, vec![0, 2]);
    }

    #[test]
    fn view_not_stable_until_all_survivors_install() {
        let mut ts: Vec<Option<ViewTracker>> =
            (0..3).map(|r| Some(ViewTracker::new(r, 3))).collect();
        ts[2] = None;
        let up = ts[0].as_mut().unwrap().suspect(2).unwrap();
        broadcast(&mut ts, 0, up);
        let v = ts[0].as_ref().unwrap().agreed_view().unwrap();
        let up = ts[0].as_mut().unwrap().install(v.epoch);
        broadcast(&mut ts, 0, up);
        assert!(!ts[0].as_ref().unwrap().view_stable(&v), "rank 1 pending");
        let up = ts[1].as_mut().unwrap().install(v.epoch);
        broadcast(&mut ts, 1, up);
        for t in ts.iter().flatten() {
            assert!(t.view_stable(&v));
        }
    }

    #[test]
    #[should_panic(expected = "cannot suspect ourselves")]
    fn self_suspicion_is_rejected() {
        ViewTracker::new(1, 3).suspect(1);
    }

    #[test]
    fn resuspecting_is_a_monotone_no_op() {
        let mut t = ViewTracker::new(0, 3);
        assert!(t.suspect(1).is_some());
        assert!(t.suspect(1).is_none());
        assert_eq!(t.suspected(), [1].into_iter().collect());
    }

    #[test]
    fn frontiers_propagate_and_min_gates_stability() {
        let mut ts: Vec<Option<ViewTracker>> = (0..3)
            .map(|r| Some(ViewTracker::with_frontiers(r, 3, 3)))
            .collect();
        // Ranks 0 and 1 have received two of sender 2's slots; rank 2
        // has only received one. The min pins stability at 1.
        for (r, count) in [(0u32, 2u64), (1, 2), (2, 1)] {
            let up = ts[r as usize]
                .as_mut()
                .unwrap()
                .advance_frontier(2, count)
                .unwrap();
            broadcast(&mut ts, r, up);
        }
        let live = [0u32, 1, 2];
        for t in ts.iter().flatten() {
            assert_eq!(t.stable_frontier(2, &live), 1, "rank {}", t.rank());
            assert_eq!(t.frontier(0, 2), 2);
            assert_eq!(t.frontier(2, 2), 1);
        }
        // Rank 2 catches up; everyone's min advances to 2.
        let up = ts[2].as_mut().unwrap().advance_frontier(2, 2).unwrap();
        broadcast(&mut ts, 2, up);
        for t in ts.iter().flatten() {
            assert_eq!(t.stable_frontier(2, &live), 2, "rank {}", t.rank());
        }
        // Excluding the laggard row from the live set raises the min —
        // the ragged-trim rule after a failure.
        assert_eq!(ts[0].as_ref().unwrap().stable_frontier(2, &[0, 1]), 2);
    }

    #[test]
    fn stale_frontier_updates_are_monotone_no_ops() {
        let mut a = ViewTracker::with_frontiers(0, 2, 2);
        let mut b = ViewTracker::with_frontiers(1, 2, 2);
        let up2 = a.advance_frontier(1, 2).unwrap();
        let up5 = a.advance_frontier(1, 5).unwrap();
        assert!(a.advance_frontier(1, 5).is_none(), "re-advance is a no-op");
        assert!(a.advance_frontier(1, 3).is_none(), "regress is a no-op");
        // Deliver the updates out of order: max-merge keeps row 0 at 5.
        b.apply_remote(0, &up5);
        b.apply_remote(0, &up2);
        assert_eq!(b.frontier(0, 1), 5);
        assert_eq!(b.frontier(1, 1), 0);
        assert_eq!(b.num_senders(), 2);
    }

    #[test]
    fn frontier_columns_coexist_with_membership_agreement() {
        let mut ts: Vec<Option<ViewTracker>> = (0..3)
            .map(|r| Some(ViewTracker::with_frontiers(r, 3, 3)))
            .collect();
        let up = ts[0].as_mut().unwrap().advance_frontier(0, 4).unwrap();
        broadcast(&mut ts, 0, up);
        ts[2] = None;
        let up = ts[1].as_mut().unwrap().suspect(2).unwrap();
        broadcast(&mut ts, 1, up);
        for t in ts.iter().flatten() {
            let v = t.agreed_view().expect("agreed");
            assert_eq!(v.members, vec![0, 1]);
            assert_eq!(t.frontier(0, 0), 4, "frontier survives agreement");
        }
    }

    #[test]
    #[should_panic(expected = "has no frontier")]
    fn plain_tracker_rejects_frontier_reads() {
        ViewTracker::new(0, 3).frontier(0, 0);
    }

    #[test]
    fn resync_pools_survivor_knowledge_of_dead_rows() {
        // Member 2 announced frontier 3 to member 0 only, then died.
        let mut a = ViewTracker::with_frontiers(0, 3, 3);
        let b = ViewTracker::with_frontiers(1, 3, 3);
        a.resync_frontier(2, 2, 3);
        assert_eq!(a.frontier(2, 2), 3);
        assert_eq!(b.frontier(2, 2), 0, "b never heard it");
        // The view-change exchange: b adopts the max any survivor saw.
        let mut b = b;
        b.resync_frontier(2, 2, a.frontier(2, 2));
        assert_eq!(b.frontier(2, 2), 3);
        // Stale resyncs and own-row resyncs are no-ops.
        b.resync_frontier(2, 2, 1);
        assert_eq!(b.frontier(2, 2), 3);
        b.advance_frontier(1, 5);
        b.resync_frontier(1, 1, 9);
        assert_eq!(b.frontier(1, 1), 5, "own row is single-writer");
    }
}
