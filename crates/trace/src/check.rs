//! The trace oracle: replays a captured event stream against the
//! protocol's invariants and reports every violation.
//!
//! The oracle is deliberately independent of the analyzer and engine
//! crates (they sit *above* `trace` in the dependency graph), so the
//! model parameters it checks against — per-step port budgets and the
//! completion-step bound — are passed in via [`CheckConfig`] by the
//! caller, which computes them from the analyzer.
//!
//! Invariants checked, per group:
//!
//! 1. **No block received before sent** — every `BlockArrived` must
//!    pair FIFO with an earlier `BlockSendIssued` on the same
//!    `(epoch, sender, receiver)` channel, for the same block number.
//!    Keying by epoch keeps pairing sound across reconfigurations,
//!    where ranks are renumbered.
//! 2. **Causality** — a member may only send blocks it holds: the full
//!    message at a root, blocks previously arrived, or blocks carried
//!    into a resume epoch (`ResumeStarted::held`).
//! 3. **Port budgets** — at most `send_budget` block sends issued and
//!    `recv_budget` block arrivals per `(member, step)`, matching the
//!    analyzer's port model for the algorithm.
//! 4. **Step bound** — in the initial epoch, no scheduled transfer may
//!    use a step beyond the analyzer's completion-step bound.
//! 5. **Delivery completeness** — `Delivered` only fires once a member
//!    holds every block of the active message.
//! 6. **No RNR arms** — under the paper's ready-for-block credit
//!    discipline (§4.2) a healthy or recovering run must never arm the
//!    receiver-not-ready retry path.
//! 7. **Redelivery** — every payload the fault model dropped or
//!    corrupted must eventually be repaired (a later
//!    `RepairDelivered` for the same `(conn, seq)`) or escalated (a
//!    later `LossEscalated`/`QpBroken` on that connection, or a
//!    trace-wide `ReconfigInstalled`/`NodeCrashed`). A lost block
//!    that is neither is a hang in the making — exactly what the
//!    reliability policies exist to rule out.
//! 8. **Atomic ordering** — an `AtomicDelivered` for the `seq`-th slot
//!    of `sender` at a member requires that member's own received
//!    frontier for `sender` to already cover it (local receipt,
//!    `FrontierAdvanced ≥ seq + 1`) *and* its stability frontier to
//!    already cover it (`StableFrontier ≥ seq + 1` — the min over live
//!    members' frontiers). Frontiers are monotone, per-member delivered
//!    slots strictly increase, and at end of trace every pair of
//!    members of one atomic group must have delivered identical slot
//!    sequences up to the shorter log (total order, prefix agreement).
//!
//! The oracle requires a *complete* trace: run the recorder in
//! [`Mode::Full`](crate::Mode::Full), or confirm
//! [`Recorder::dropped`](crate::Recorder::dropped) is zero on a ring
//! capture before checking it.

use crate::{EventKind, TraceEvent};
// The oracle's hash maps are pure lookup tables — entry/get/retain
// keyed by trace-supplied ids, never iterated — so their randomized
// order cannot leak into the verdict or the violation list.
#[allow(clippy::disallowed_types)]
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Model parameters the oracle checks against; compute these from the
/// analyzer for the algorithm under test. `None` disables a check.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Max block sends a member may issue at one schedule step.
    pub send_budget: Option<u32>,
    /// Max block arrivals a member may accept at one schedule step.
    pub recv_budget: Option<u32>,
    /// Max schedule step any initial-epoch transfer may use (the
    /// analyzer's completion step for the algorithm at this (n, k)).
    pub completion_step_bound: Option<u32>,
    /// Fail on any `RnrArmed` event.
    pub forbid_rnr: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            send_budget: None,
            recv_budget: None,
            completion_step_bound: None,
            forbid_rnr: true,
        }
    }
}

/// Summary counters from a clean check, so callers can assert the
/// oracle actually saw the traffic it was supposed to vet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Block sends issued.
    pub issues: u64,
    /// Block arrivals, each matched against a send.
    pub arrivals: u64,
    /// Delivery upcalls.
    pub deliveries: u64,
    /// Highest schedule step seen on any initial-epoch transfer.
    pub max_step: Option<u32>,
    /// Payloads the fault model dropped or corrupted, each proven
    /// repaired or escalated by the redelivery rule.
    pub losses: u64,
    /// Repair deliveries (retransmissions and reconstructions).
    pub repairs: u64,
    /// Atomic (total-order) delivery upcalls, each proven locally
    /// received and stable before delivery.
    pub atomic_deliveries: u64,
}

/// Wire conventions shared between the reliability layer (`rdmc-sim`)
/// and the oracle's redelivery rule, kept here — the one crate both
/// sides depend on — so they cannot drift apart.
///
/// When a reliability policy is active, data sends carry their block
/// sequence number in the high bits of the immediate value
/// ([`wire::pack_imm`]), and repair/parity one-sided writes use
/// work-request ids offset by [`wire::REPAIR_WR_BASE`] /
/// [`wire::PARITY_WR_BASE`]. That is what lets a fabric-level
/// `PayloadDropped` event name the block it lost without the fabric
/// knowing anything about the protocol above it.
pub mod wire {
    /// Bit position of the (seq + 1) tag inside an immediate value.
    /// Total message sizes stay below 2^40 (a terabyte), so the tag and
    /// the size never collide; untagged immediates (policy `None`) are
    /// always below `1 << SEQ_SHIFT`.
    pub const SEQ_SHIFT: u32 = 40;

    /// Repair (retransmission) writes use `REPAIR_WR_BASE + seq` as
    /// their work-request id.
    pub const REPAIR_WR_BASE: u64 = 1 << 32;

    /// Parity writes use `PARITY_WR_BASE + generation` as their
    /// work-request id. Parity loss alone is harmless (it is pure
    /// redundancy), so the redelivery rule exempts this range.
    pub const PARITY_WR_BASE: u64 = 1 << 33;

    /// Packs a block sequence number and the total message size into
    /// one immediate value. `seq + 1` so sequence 0 is distinguishable
    /// from an untagged immediate.
    #[must_use]
    pub fn pack_imm(seq: u64, total_size: u64) -> u64 {
        debug_assert!(total_size < 1 << SEQ_SHIFT, "message size overflows tag");
        ((seq + 1) << SEQ_SHIFT) | total_size
    }

    /// Splits an immediate value into `(block sequence, total size)`;
    /// the sequence is `None` for untagged immediates.
    #[must_use]
    pub fn unpack_imm(imm: u64) -> (Option<u64>, u64) {
        let tag = imm >> SEQ_SHIFT;
        if tag == 0 {
            (None, imm)
        } else {
            (Some(tag - 1), imm & ((1 << SEQ_SHIFT) - 1))
        }
    }
}

/// Per-member holding state for the causality and delivery checks.
/// A member processes one message at a time, and its events appear in
/// processing order, so flat (group, rank) keying is sound; each
/// `TransferStarted` / `ResumeStarted` resets the state.
#[derive(Default)]
struct MemberState {
    held: BTreeSet<u32>,
    blocks: Option<u32>,
}

type Chan = (u32, u64, u32, u32); // (group, epoch, sender, receiver)
type Member = (u32, u32); // (group, rank)
/// One atomic group's delivery logs for the end-of-trace agreement
/// sweep: each rank's delivered `(slot, sender, seq)` sequence.
type RankLogs<'a> = Vec<(u32, &'a Vec<(u64, u32, u64)>)>;

/// Checks every invariant over a complete event stream. Returns summary
/// counters on success, or every violation found (never just the
/// first — a broken run should be diagnosable in one pass).
#[allow(clippy::disallowed_types)] // lookup-only maps; see the import note
pub fn check_events(events: &[TraceEvent], cfg: &CheckConfig) -> Result<CheckStats, Vec<String>> {
    let mut violations: Vec<String> = Vec::new();
    let mut stats = CheckStats::default();

    // FIFO per-channel queues of issued-but-unmatched sends.
    let mut in_flight: HashMap<Chan, VecDeque<(u64, u32)>> = HashMap::new();
    let mut members: HashMap<Member, MemberState> = HashMap::new();
    // Step-budget counters, reset per message via the generation tag.
    let mut sends_at: HashMap<(Member, u64, u32), u32> = HashMap::new();
    let mut recvs_at: HashMap<(Member, u64, u32), u32> = HashMap::new();
    // Redelivery rule: every drop/corruption, and the latest trace seq
    // at which each (conn, block-seq) repair / per-conn escalation /
    // trace-wide recovery landed.
    struct Loss {
        at_seq: u64,
        conn: u32,
        block: Option<u64>,
        what: &'static str,
    }
    let mut losses: Vec<Loss> = Vec::new();
    let mut last_repair: HashMap<(u32, u64), u64> = HashMap::new();
    let mut last_escalation: HashMap<u32, u64> = HashMap::new();
    let mut last_recovery: Option<u64> = None;
    // Atomic-ordering rule: per (member, sender) own and stable
    // frontiers, and each member's delivered-slot log. BTreeMap so the
    // end-of-trace prefix-agreement sweep reports in rank order.
    let mut own_frontier: HashMap<(Member, u32), u64> = HashMap::new();
    let mut min_frontier: HashMap<(Member, u32), u64> = HashMap::new();
    let mut atomic_logs: BTreeMap<Member, Vec<(u64, u32, u64)>> = BTreeMap::new();

    for ev in events {
        match &ev.kind {
            EventKind::PayloadDropped { conn, wr, imm, .. }
            | EventKind::PayloadCorrupted { conn, wr, imm, .. } => {
                // Parity payloads are pure redundancy; their loss alone
                // can never strand a block.
                if (wire::PARITY_WR_BASE..wire::PARITY_WR_BASE * 2).contains(wr) {
                    continue;
                }
                let block = match wire::unpack_imm(*imm).0 {
                    Some(seq) => Some(seq),
                    // A dropped repair write names its block in the wr id.
                    None if (wire::REPAIR_WR_BASE..wire::PARITY_WR_BASE).contains(wr) => {
                        Some(wr - wire::REPAIR_WR_BASE)
                    }
                    None => None,
                };
                stats.losses += 1;
                losses.push(Loss {
                    at_seq: ev.seq,
                    conn: *conn,
                    block,
                    what: if matches!(ev.kind, EventKind::PayloadDropped { .. }) {
                        "dropped"
                    } else {
                        "corrupted"
                    },
                });
                continue;
            }
            EventKind::RepairDelivered { conn, seq, .. } => {
                stats.repairs += 1;
                last_repair.insert((*conn, *seq), ev.seq);
                continue;
            }
            EventKind::LossEscalated { conn } | EventKind::QpBroken { conn } => {
                last_escalation.insert(*conn, ev.seq);
                continue;
            }
            EventKind::ReconfigInstalled { .. } | EventKind::NodeCrashed => {
                last_recovery = Some(ev.seq);
                // Fall through: ReconfigInstalled also matters to no
                // other rule, NodeCrashed neither; both lack a rank
                // scope and exit at the destructure below.
            }
            _ => {}
        }
        let place = |what: &str| -> String {
            format!(
                "seq {} t_ns {} [group {:?} rank {:?} node {:?}]: {what}",
                ev.seq, ev.t_ns, ev.scope.group, ev.scope.rank, ev.scope.node
            )
        };
        if cfg.forbid_rnr {
            if let EventKind::RnrArmed { conn, dir } = &ev.kind {
                violations.push(place(&format!(
                    "RNR retry armed on conn {conn} dir {dir}; the ready-for-block \
                     protocol must keep receives pre-posted"
                )));
                continue;
            }
        }
        let (group, rank) = match (ev.scope.group, ev.scope.rank) {
            (Some(g), Some(r)) => (g, r),
            _ => continue,
        };
        let member = (group, rank);

        match &ev.kind {
            EventKind::TransferStarted { blocks, root, .. } => {
                let st = members.entry(member).or_default();
                st.blocks = Some(*blocks);
                st.held = if *root {
                    (0..*blocks).collect()
                } else {
                    BTreeSet::new()
                };
            }
            EventKind::ResumeStarted { blocks, held, .. } => {
                let st = members.entry(member).or_default();
                st.blocks = Some(*blocks);
                st.held = held.iter().copied().collect();
            }
            EventKind::BlockSendIssued {
                to,
                block,
                step,
                epoch,
                ..
            } => {
                stats.issues += 1;
                in_flight
                    .entry((group, *epoch, rank, *to))
                    .or_default()
                    .push_back((ev.t_ns, *block));
                let st = members.entry(member).or_default();
                if !st.held.contains(block) {
                    violations.push(place(&format!(
                        "sent block {block} (step {step}, epoch {epoch}) without holding it"
                    )));
                }
                if *epoch == 0 {
                    stats.max_step = Some(stats.max_step.map_or(*step, |m| m.max(*step)));
                    if let Some(bound) = cfg.completion_step_bound {
                        if *step > bound {
                            violations.push(place(&format!(
                                "send at step {step} exceeds completion-step bound {bound}"
                            )));
                        }
                    }
                }
                if let Some(budget) = cfg.send_budget {
                    let n = sends_at.entry((member, *epoch, *step)).or_insert(0);
                    *n += 1;
                    if *n > budget {
                        violations.push(place(&format!(
                            "{n} sends issued at step {step} exceeds send port budget {budget}"
                        )));
                    }
                }
            }
            EventKind::BlockArrived {
                from,
                block,
                step,
                epoch,
                ..
            } => {
                stats.arrivals += 1;
                let chan = (group, *epoch, *from, rank);
                match in_flight.get_mut(&chan).and_then(VecDeque::pop_front) {
                    None => violations.push(place(&format!(
                        "block {block} arrived from rank {from} (epoch {epoch}) with no \
                         matching send in flight"
                    ))),
                    Some((t_sent, sent_block)) => {
                        if sent_block != *block {
                            violations.push(place(&format!(
                                "arrival block {block} does not match next in-flight block \
                                 {sent_block} from rank {from} (FIFO order broken)"
                            )));
                        }
                        if t_sent > ev.t_ns {
                            violations.push(place(&format!(
                                "block {block} arrived at {} before it was sent at {t_sent}",
                                ev.t_ns
                            )));
                        }
                    }
                }
                let st = members.entry(member).or_default();
                if !st.held.insert(*block) {
                    violations.push(place(&format!("block {block} arrived twice")));
                }
                if let Some(total) = st.blocks {
                    if *block >= total {
                        violations.push(place(&format!(
                            "block {block} out of range for a {total}-block message"
                        )));
                    }
                }
                if *epoch == 0 {
                    stats.max_step = Some(stats.max_step.map_or(*step, |m| m.max(*step)));
                    if let Some(bound) = cfg.completion_step_bound {
                        if *step > bound {
                            violations.push(place(&format!(
                                "arrival at step {step} exceeds completion-step bound {bound}"
                            )));
                        }
                    }
                }
                if let Some(budget) = cfg.recv_budget {
                    let n = recvs_at.entry((member, *epoch, *step)).or_insert(0);
                    *n += 1;
                    if *n > budget {
                        violations.push(place(&format!(
                            "{n} arrivals at step {step} exceeds recv port budget {budget}"
                        )));
                    }
                }
            }
            EventKind::FrontierAdvanced { sender, frontier } => {
                let f = own_frontier.entry((member, *sender)).or_insert(0);
                if *frontier < *f {
                    violations.push(place(&format!(
                        "received frontier for sender {sender} regressed {f} -> {frontier}"
                    )));
                }
                *f = (*f).max(*frontier);
            }
            EventKind::StableFrontier { sender, frontier } => {
                let received = own_frontier.get(&(member, *sender)).copied().unwrap_or(0);
                if *frontier > received {
                    violations.push(place(&format!(
                        "stable frontier {frontier} for sender {sender} exceeds this \
                         member's own received frontier {received} — stability cannot \
                         outrun local receipt"
                    )));
                }
                let f = min_frontier.entry((member, *sender)).or_insert(0);
                if *frontier < *f {
                    violations.push(place(&format!(
                        "stable frontier for sender {sender} regressed {f} -> {frontier}"
                    )));
                }
                *f = (*f).max(*frontier);
            }
            EventKind::AtomicDelivered {
                slot, sender, seq, ..
            } => {
                stats.atomic_deliveries += 1;
                let received = own_frontier.get(&(member, *sender)).copied().unwrap_or(0);
                if received < seq + 1 {
                    violations.push(place(&format!(
                        "atomic delivery of slot {slot} (sender {sender} seq {seq}) \
                         before local receipt: own frontier is {received}"
                    )));
                }
                let stable = min_frontier.get(&(member, *sender)).copied().unwrap_or(0);
                if stable < seq + 1 {
                    violations.push(place(&format!(
                        "atomic delivery of slot {slot} (sender {sender} seq {seq}) \
                         before stability: min frontier is {stable}"
                    )));
                }
                let log = atomic_logs.entry(member).or_default();
                if let Some(&(last, ..)) = log.last() {
                    if *slot <= last {
                        violations.push(place(&format!(
                            "atomic delivery of slot {slot} after slot {last} — total \
                             order must be strictly increasing"
                        )));
                    }
                }
                log.push((*slot, *sender, *seq));
            }
            EventKind::Delivered { .. } => {
                stats.deliveries += 1;
                let st = members.entry(member).or_default();
                let complete = st.blocks.is_some_and(|b| st.held.len() as u32 == b);
                if !complete {
                    violations.push(place(&format!(
                        "delivered holding {} of {:?} blocks",
                        st.held.len(),
                        st.blocks
                    )));
                }
                // Next message on this rank starts fresh. Step budgets
                // are also per message: retire this message's counters.
                st.held.clear();
                st.blocks = None;
                sends_at.retain(|&(m, _, _), _| m != member);
                recvs_at.retain(|&(m, _, _), _| m != member);
            }
            _ => {}
        }
    }

    // Total-order agreement: within one atomic group, every member's
    // delivered-slot sequence must be a prefix of the longest member's
    // (two prefixes of a common sequence always agree pairwise).
    let mut groups: BTreeMap<u32, RankLogs> = BTreeMap::new();
    for (&(group, rank), log) in &atomic_logs {
        groups.entry(group).or_default().push((rank, log));
    }
    for (group, logs) in &groups {
        let (long_rank, longest) = logs
            .iter()
            .max_by_key(|(_, l)| l.len())
            .copied()
            .expect("group with no logs is unrepresentable");
        for &(rank, log) in logs {
            if log[..] != longest[..log.len()] {
                let at = log
                    .iter()
                    .zip(&longest[..log.len()])
                    .position(|(a, b)| a != b)
                    .expect("a non-prefix diverges somewhere");
                violations.push(format!(
                    "group {group}: rank {rank}'s atomic delivery log diverges from \
                     rank {long_rank}'s at position {at} ({:?} vs {:?}) — members must \
                     deliver identical sequences",
                    log[at], longest[at]
                ));
            }
        }
    }

    for loss in &losses {
        let repaired = loss
            .block
            .and_then(|b| last_repair.get(&(loss.conn, b)))
            .is_some_and(|&at| at > loss.at_seq);
        let escalated = last_escalation
            .get(&loss.conn)
            .is_some_and(|&at| at > loss.at_seq)
            || last_recovery.is_some_and(|at| at > loss.at_seq);
        if !repaired && !escalated {
            violations.push(format!(
                "seq {}: payload {} on conn {} (block {:?}) was never repaired \
                 or escalated — a silent hole in the received-block bitmap",
                loss.at_seq, loss.what, loss.conn, loss.block
            ));
        }
    }

    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Scope};

    fn two_rank_clean() -> Vec<TraceEvent> {
        let r = Recorder::full();
        let g = 0;
        r.set_now(0);
        r.record(Scope::group_rank(g, 0), || EventKind::MessageSubmitted {
            size: 2,
        });
        r.record(Scope::group_rank(g, 0), || EventKind::TransferStarted {
            size: 2,
            blocks: 2,
            root: true,
        });
        r.record(Scope::group_rank(g, 1), || EventKind::TransferStarted {
            size: 2,
            blocks: 2,
            root: false,
        });
        for b in 0..2u32 {
            r.set_now(u64::from(b + 1) * 100);
            r.record(Scope::group_rank(g, 0), || EventKind::BlockSendIssued {
                to: 1,
                block: b,
                step: b,
                bytes: 1,
                epoch: 0,
            });
            r.set_now(u64::from(b + 1) * 100 + 50);
            r.record(Scope::group_rank(g, 1), || EventKind::BlockArrived {
                from: 0,
                block: b,
                step: b,
                first: b == 0,
                epoch: 0,
            });
        }
        r.record(Scope::group_rank(g, 1), || EventKind::Delivered { size: 2 });
        r.record(Scope::group_rank(g, 0), || EventKind::Delivered { size: 2 });
        r.events()
    }

    #[test]
    fn clean_trace_passes() {
        let cfg = CheckConfig {
            send_budget: Some(1),
            recv_budget: Some(1),
            completion_step_bound: Some(1),
            forbid_rnr: true,
        };
        let stats = check_events(&two_rank_clean(), &cfg).expect("clean trace");
        assert_eq!(stats.issues, 2);
        assert_eq!(stats.arrivals, 2);
        assert_eq!(stats.deliveries, 2);
        assert_eq!(stats.max_step, Some(1));
    }

    #[test]
    fn arrival_without_send_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::group_rank(0, 1), || EventKind::BlockArrived {
            from: 0,
            block: 0,
            step: 0,
            first: true,
            epoch: 0,
        });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("no matching send")));
    }

    #[test]
    fn sending_unheld_block_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::group_rank(0, 1), || EventKind::TransferStarted {
            size: 2,
            blocks: 2,
            root: false,
        });
        r.record(Scope::group_rank(0, 1), || EventKind::BlockSendIssued {
            to: 0,
            block: 1,
            step: 0,
            bytes: 1,
            epoch: 0,
        });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("without holding it")));
    }

    #[test]
    fn step_bound_violation_is_flagged() {
        let cfg = CheckConfig {
            completion_step_bound: Some(0),
            ..CheckConfig::default()
        };
        let err = check_events(&two_rank_clean(), &cfg).unwrap_err();
        assert!(err
            .iter()
            .any(|v| v.contains("exceeds completion-step bound 0")));
    }

    #[test]
    fn rnr_arm_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::node(3), || EventKind::RnrArmed { conn: 1, dir: 0 });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("RNR")));
        assert!(check_events(
            &r.events(),
            &CheckConfig {
                forbid_rnr: false,
                ..CheckConfig::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn port_budget_violation_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::group_rank(0, 0), || EventKind::TransferStarted {
            size: 4,
            blocks: 4,
            root: true,
        });
        for b in 0..2u32 {
            r.record(Scope::group_rank(0, 0), || EventKind::BlockSendIssued {
                to: 1,
                block: b,
                step: 0,
                bytes: 1,
                epoch: 0,
            });
        }
        let cfg = CheckConfig {
            send_budget: Some(1),
            ..CheckConfig::default()
        };
        let err = check_events(&r.events(), &cfg).unwrap_err();
        assert!(err.iter().any(|v| v.contains("send port budget")));
    }

    #[test]
    fn delivery_without_all_blocks_is_flagged() {
        let mut ev = two_rank_clean();
        // Drop rank 1's second arrival; its delivery is now premature.
        let idx = ev
            .iter()
            .position(|e| matches!(e.kind, EventKind::BlockArrived { block: 1, .. }))
            .unwrap();
        ev.remove(idx);
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err
            .iter()
            .any(|v| v.contains("delivered holding 1 of Some(2)")));
    }

    #[test]
    fn pack_unpack_imm_roundtrips() {
        assert_eq!(wire::unpack_imm(wire::pack_imm(0, 4096)), (Some(0), 4096));
        assert_eq!(
            wire::unpack_imm(wire::pack_imm(17, 1 << 30)),
            (Some(17), 1 << 30)
        );
        assert_eq!(wire::unpack_imm(4096), (None, 4096));
    }

    #[test]
    fn unrepaired_drop_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::node(1), || EventKind::PayloadDropped {
            conn: 0,
            end: 1,
            wr: 2,
            imm: wire::pack_imm(2, 100),
        });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("never repaired")));
    }

    #[test]
    fn repaired_drop_passes() {
        let r = Recorder::full();
        r.record(Scope::node(1), || EventKind::PayloadDropped {
            conn: 0,
            end: 1,
            wr: 2,
            imm: wire::pack_imm(2, 100),
        });
        r.record(Scope::node(1), || EventKind::RepairDelivered {
            conn: 0,
            seq: 2,
            coded: false,
        });
        let stats = check_events(&r.events(), &CheckConfig::default()).expect("repaired");
        assert_eq!(stats.losses, 1);
        assert_eq!(stats.repairs, 1);
    }

    #[test]
    fn dropped_repair_write_is_tracked_by_wr_id() {
        let r = Recorder::full();
        // The retransmission of block 5 was itself dropped...
        r.record(Scope::node(1), || EventKind::PayloadDropped {
            conn: 3,
            end: 1,
            wr: wire::REPAIR_WR_BASE + 5,
            imm: 0,
        });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("block Some(5)")));
        // ...but a second repair round landed it.
        r.record(Scope::node(1), || EventKind::RepairDelivered {
            conn: 3,
            seq: 5,
            coded: false,
        });
        assert!(check_events(&r.events(), &CheckConfig::default()).is_ok());
    }

    #[test]
    fn escalation_excuses_a_drop() {
        for escalate in [true, false] {
            let r = Recorder::full();
            r.record(Scope::node(1), || EventKind::PayloadDropped {
                conn: 7,
                end: 0,
                wr: 0,
                imm: 0, // untagged: only escalation can excuse it
            });
            if escalate {
                r.record(Scope::node(1), || EventKind::LossEscalated { conn: 7 });
            }
            let res = check_events(&r.events(), &CheckConfig::default());
            assert_eq!(res.is_ok(), escalate);
        }
    }

    #[test]
    fn dropped_parity_is_exempt() {
        let r = Recorder::full();
        r.record(Scope::node(1), || EventKind::PayloadDropped {
            conn: 0,
            end: 1,
            wr: wire::PARITY_WR_BASE + 1,
            imm: 0,
        });
        assert!(check_events(&r.events(), &CheckConfig::default()).is_ok());
    }

    #[test]
    fn repair_before_the_drop_does_not_count() {
        let r = Recorder::full();
        r.record(Scope::node(1), || EventKind::RepairDelivered {
            conn: 0,
            seq: 1,
            coded: true,
        });
        r.record(Scope::node(1), || EventKind::PayloadDropped {
            conn: 0,
            end: 1,
            wr: 1,
            imm: wire::pack_imm(1, 64),
        });
        assert!(check_events(&r.events(), &CheckConfig::default()).is_err());
    }

    /// A clean atomic-overlay trace: sender 0 owns slot 0; both members
    /// advance their received frontier, observe stability, and deliver.
    fn atomic_clean() -> Vec<TraceEvent> {
        let r = Recorder::full();
        let g = 0;
        r.record(Scope::group_rank(g, 0), || EventKind::AtomicSubmitted {
            slot: 0,
            sender: 0,
            null: false,
            size: 64,
        });
        for m in 0..2u32 {
            r.record(Scope::group_rank(g, m), || EventKind::FrontierAdvanced {
                sender: 0,
                frontier: 1,
            });
        }
        for m in 0..2u32 {
            r.record(Scope::group_rank(g, m), || EventKind::StableFrontier {
                sender: 0,
                frontier: 1,
            });
            r.record(Scope::group_rank(g, m), || EventKind::AtomicDelivered {
                slot: 0,
                sender: 0,
                seq: 0,
                size: 64,
            });
        }
        r.events()
    }

    #[test]
    fn clean_atomic_trace_passes() {
        let stats = check_events(&atomic_clean(), &CheckConfig::default()).expect("clean");
        assert_eq!(stats.atomic_deliveries, 2);
    }

    #[test]
    fn atomic_delivery_without_stability_is_flagged() {
        // Strip rank 1's StableFrontier: its delivery is now premature.
        let ev: Vec<TraceEvent> = atomic_clean()
            .into_iter()
            .filter(|e| {
                !(e.scope.rank == Some(1) && matches!(e.kind, EventKind::StableFrontier { .. }))
            })
            .collect();
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("before stability")));
    }

    #[test]
    fn atomic_delivery_reordered_before_stability_is_flagged() {
        // Swap rank 1's StableFrontier and AtomicDelivered: same events,
        // wrong order — the oracle must still reject it.
        let mut ev = atomic_clean();
        let s = ev
            .iter()
            .position(|e| {
                e.scope.rank == Some(1) && matches!(e.kind, EventKind::StableFrontier { .. })
            })
            .unwrap();
        ev.swap(s, s + 1);
        assert!(matches!(ev[s].kind, EventKind::AtomicDelivered { .. }));
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("before stability")));
    }

    #[test]
    fn atomic_delivery_without_local_receipt_is_flagged() {
        // Strip rank 1's own FrontierAdvanced. Its StableFrontier now
        // claims more than the member received, and the delivery lacks
        // local receipt — both rules fire.
        let ev: Vec<TraceEvent> = atomic_clean()
            .into_iter()
            .filter(|e| {
                !(e.scope.rank == Some(1) && matches!(e.kind, EventKind::FrontierAdvanced { .. }))
            })
            .collect();
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("before local receipt")));
        assert!(err
            .iter()
            .any(|v| v.contains("cannot outrun local receipt")));
    }

    #[test]
    fn diverging_atomic_logs_are_flagged() {
        // Rank 1 delivers a different slot in position 0 than rank 0.
        let mut ev = atomic_clean();
        for e in &mut ev {
            if e.scope.rank == Some(1) {
                if let EventKind::AtomicDelivered { slot, seq, .. } = &mut e.kind {
                    *slot = 1;
                    *seq = 1;
                }
                if let EventKind::FrontierAdvanced { frontier, .. }
                | EventKind::StableFrontier { frontier, .. } = &mut e.kind
                {
                    *frontier = 2; // keep the per-member rules satisfied
                }
            }
        }
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("diverges")));
    }

    #[test]
    fn frontier_regression_is_flagged() {
        let r = Recorder::full();
        r.record(Scope::group_rank(0, 0), || EventKind::FrontierAdvanced {
            sender: 1,
            frontier: 3,
        });
        r.record(Scope::group_rank(0, 0), || EventKind::FrontierAdvanced {
            sender: 1,
            frontier: 2,
        });
        let err = check_events(&r.events(), &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("regressed 3 -> 2")));
    }

    #[test]
    fn non_monotone_slot_order_is_flagged() {
        let mut ev = atomic_clean();
        // Duplicate rank 0's delivery: slot 0 delivered twice.
        let d = ev
            .iter()
            .position(|e| {
                e.scope.rank == Some(0) && matches!(e.kind, EventKind::AtomicDelivered { .. })
            })
            .unwrap();
        let dup = ev[d].clone();
        ev.insert(d + 1, dup);
        let err = check_events(&ev, &CheckConfig::default()).unwrap_err();
        assert!(err.iter().any(|v| v.contains("strictly increasing")));
    }

    #[test]
    fn resume_held_blocks_satisfy_causality() {
        let r = Recorder::full();
        // Epoch 1 resume: member kept block 0 and may send it on.
        r.record(Scope::group_rank(0, 0), || EventKind::EpochInstalled {
            epoch: 1,
            rank: 0,
            num_nodes: 2,
            resumes: 1,
            resume_blocks_out: 1,
        });
        r.record(Scope::group_rank(0, 0), || EventKind::ResumeStarted {
            size: 2,
            blocks: 2,
            held: vec![0],
            already_delivered: false,
        });
        r.record(Scope::group_rank(0, 0), || EventKind::BlockSendIssued {
            to: 1,
            block: 0,
            step: 0,
            bytes: 1,
            epoch: 1,
        });
        assert!(check_events(&r.events(), &CheckConfig::default()).is_ok());
    }
}
