//! Trace replay: recomputes results the engine reports — delivery
//! times, message sizes, resumed-block counts — from the event stream
//! alone, so differential tests can cross-check the two.
//!
//! Deliveries are keyed by *fabric node* rather than rank: ranks are
//! renumbered by reconfiguration, but a member's node id is stable for
//! the life of the simulation, so `(group, node)` identifies the same
//! member across epochs without consulting survivor lists.

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// Everything [`replay`] recomputes from a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayResult {
    /// Per `(group, node)`: each delivery upcall as `(t_ns, size)`,
    /// in delivery order.
    pub delivered: BTreeMap<(u32, u32), Vec<(u64, u64)>>,
    /// Total delivery upcalls across the trace.
    pub deliveries: u64,
    /// Σ `resumed_blocks` over `ReconfigInstalled` events — the
    /// cluster-side count of block transfers in resume schedules.
    pub reconfig_resumed_blocks: u64,
    /// Σ `resume_blocks_out` over `EpochInstalled` events — the same
    /// quantity counted member-by-member at epoch install. Must equal
    /// [`reconfig_resumed_blocks`](Self::reconfig_resumed_blocks).
    pub member_resume_blocks: u64,
    /// Reconfigurations observed.
    pub reconfigurations: u64,
    /// `RnrArmed` events observed (must be zero on any run).
    pub rnr_arms: u64,
}

/// Recomputes [`ReplayResult`] from a complete event stream.
pub fn replay(events: &[TraceEvent]) -> ReplayResult {
    let mut out = ReplayResult::default();
    for ev in events {
        match &ev.kind {
            EventKind::Delivered { size } => {
                out.deliveries += 1;
                if let (Some(g), Some(n)) = (ev.scope.group, ev.scope.node) {
                    out.delivered
                        .entry((g, n))
                        .or_default()
                        .push((ev.t_ns, *size));
                }
            }
            EventKind::ReconfigInstalled { resumed_blocks, .. } => {
                out.reconfigurations += 1;
                out.reconfig_resumed_blocks += resumed_blocks;
            }
            EventKind::EpochInstalled {
                resume_blocks_out, ..
            } => {
                out.member_resume_blocks += u64::from(*resume_blocks_out);
            }
            EventKind::RnrArmed { .. } => out.rnr_arms += 1,
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Scope};

    #[test]
    fn replay_collects_deliveries_and_resume_counts() {
        let r = Recorder::full();
        let member = |g: u32, rank: u32, node: u32| Scope {
            node: Some(node),
            group: Some(g),
            rank: Some(rank),
        };
        r.set_now(100);
        r.record(member(0, 1, 7), || EventKind::Delivered { size: 64 });
        r.set_now(200);
        r.record(Scope::group(0), || EventKind::ReconfigInstalled {
            epoch: 1,
            survivors: vec![0, 1],
            removed: vec![2],
            abandoned: vec![],
            resumed_blocks: 5,
            forced: false,
        });
        r.record(member(0, 0, 3), || EventKind::EpochInstalled {
            epoch: 1,
            rank: 0,
            num_nodes: 2,
            resumes: 1,
            resume_blocks_out: 3,
        });
        r.record(member(0, 1, 7), || EventKind::EpochInstalled {
            epoch: 1,
            rank: 1,
            num_nodes: 2,
            resumes: 1,
            resume_blocks_out: 2,
        });
        r.set_now(300);
        r.record(member(0, 0, 3), || EventKind::Delivered { size: 64 });

        let rep = replay(&r.events());
        assert_eq!(rep.deliveries, 2);
        assert_eq!(rep.delivered[&(0, 7)], vec![(100, 64)]);
        assert_eq!(rep.delivered[&(0, 3)], vec![(300, 64)]);
        assert_eq!(rep.reconfigurations, 1);
        assert_eq!(rep.reconfig_resumed_blocks, 5);
        assert_eq!(rep.member_resume_blocks, 5);
        assert_eq!(rep.rnr_arms, 0);
    }
}
