//! # trace — the flight recorder
//!
//! A structured event recorder threaded through every layer of the
//! reproduction: the flow network (`simnet`), the simulated verbs
//! fabric (`verbs`), the sans-IO protocol engine (`rdmc`), and the
//! simulation driver (`rdmc-sim`). The paper's evaluation (§5) explains
//! every result in per-block terms — which step a block moved at, who
//! stalled waiting on whom — and this crate is the substrate that makes
//! those explanations reproducible from inside the system:
//!
//! - [`Recorder`] — a cheap-clone handle that is **zero-cost when
//!   disabled**: every instrumentation point is a single branch on an
//!   `Option<Arc<_>>`, and the event payload is built inside a closure
//!   that never runs unless recording is on. Two capture modes:
//!   a bounded ring buffer (flight-recorder style, keeps the most
//!   recent events) and full capture.
//! - [`TraceEvent`] / [`EventKind`] — the event taxonomy, spanning flow
//!   starts and rate changes, verb posts/completions/RNR arms/flushes,
//!   protocol steps (block send/receive, credit grants, wedge/resume),
//!   and membership epidemics/reconfigurations.
//! - [`export`] — deterministic JSONL and Chrome `trace_event`
//!   exporters (load the latter in `chrome://tracing` or Perfetto).
//! - [`stall`] — critical-path stall attribution: classifies every
//!   nanosecond between submit and the last delivery as ideal transfer
//!   time, link-limited, sender-limited, receiver-limited (credit /
//!   posting order), or schedule-idle. The classes **sum exactly** to
//!   the end-to-end latency by construction. For multi-tenant runs,
//!   [`stall::rollup_by_group`] aggregates every block send in the
//!   trace into a per-group split of ideal transfer time, admission
//!   (sender-limited) wait, and link contention.
//! - [`check`] — the trace oracle: replays a captured trace against the
//!   protocol's invariants (no block received before sent, causality,
//!   posting-window caps, step bounds, no RNR arms).
//! - [`replay`] — recomputes engine-reported results (delivery times,
//!   resumed-block counts) from the trace alone, for differential
//!   testing.
//!
//! The recorder carries its own nanosecond clock (an atomic the driver
//! keeps current), because the protocol engine is sans-IO and owns no
//! clock of its own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod export;
pub mod replay;
pub mod stall;

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a [`Recorder`] stores events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Keep only the most recent `capacity` events (flight-recorder
    /// style); older events are dropped and counted in
    /// [`Recorder::dropped`].
    Ring(usize),
    /// Keep every event.
    Full,
}

/// Where an event happened: a fabric node, a (group, rank), both, or
/// neither (network-level events). Absent coordinates are `None`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Scope {
    /// Fabric node index, when known.
    pub node: Option<u32>,
    /// Group id, for protocol-level events.
    pub group: Option<u32>,
    /// Member rank within the group (current-epoch numbering).
    pub rank: Option<u32>,
}

impl Scope {
    /// An event with no location (e.g. a flow-network event).
    pub const fn none() -> Self {
        Scope {
            node: None,
            group: None,
            rank: None,
        }
    }

    /// An event at a fabric node.
    pub const fn node(node: u32) -> Self {
        Scope {
            node: Some(node),
            group: None,
            rank: None,
        }
    }

    /// An event at one group member.
    pub const fn group_rank(group: u32, rank: u32) -> Self {
        Scope {
            node: None,
            group: Some(group),
            rank: Some(rank),
        }
    }

    /// A group-wide event (no single member).
    pub const fn group(group: u32) -> Self {
        Scope {
            node: None,
            group: Some(group),
            rank: None,
        }
    }
}

/// One recorded moment: a global sequence number (total order), the
/// virtual-time nanosecond it happened at, where, and what.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number (dense while nothing is dropped).
    pub seq: u64,
    /// Virtual time in nanoseconds.
    pub t_ns: u64,
    /// Where it happened.
    pub scope: Scope,
    /// What happened.
    pub kind: EventKind,
}

/// Everything the flight recorder distinguishes, across all layers.
///
/// Rank-valued fields are in the *current epoch's* numbering at record
/// time; [`EventKind::ReconfigInstalled`] carries the original-rank
/// survivor list needed to map them back.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field meanings documented per variant
pub enum EventKind {
    // ---- simnet: flow network -------------------------------------
    /// A bulk transfer started on the flow network.
    FlowStarted { flow: u64, bytes: u64 },
    /// A flow's max-min fair rate changed (link contention).
    FlowRateChanged { flow: u64, gbps: f64 },
    /// A flow left the network (completed, or aborted by a failure).
    FlowFinished { flow: u64, aborted: bool },

    // ---- verbs: simulated RDMA fabric -----------------------------
    /// A two-sided send was posted to a queue pair.
    SendPosted {
        conn: u32,
        end: u8,
        wr: u64,
        bytes: u64,
    },
    /// A receive was posted to a queue pair.
    RecvPosted { conn: u32, end: u8, wr: u64 },
    /// A one-sided write was posted to a queue pair.
    WritePosted {
        conn: u32,
        end: u8,
        tag: u64,
        bytes: u64,
    },
    /// A work request completed in hardware (`recv` = consumer side).
    WrCompleted {
        conn: u32,
        end: u8,
        wr: u64,
        recv: bool,
    },
    /// A one-sided write landed in the peer's memory.
    WriteDelivered { conn: u32, end: u8, tag: u64 },
    /// A send found its receiver without a posted receive and armed the
    /// RNR retry timer — under RDMC's ready-for-block discipline this
    /// must never happen on a healthy run (§4.2).
    RnrArmed { conn: u32, dir: u8 },
    /// An outstanding work request was flushed by a connection break.
    WrFlushed {
        conn: u32,
        end: u8,
        wr: u64,
        recv: bool,
    },
    /// A connection broke (failure detection, link flap, teardown).
    QpBroken { conn: u32 },
    /// A node crashed.
    NodeCrashed,
    /// The fault model dropped a payload on the wire: the receiver-side
    /// completion never fires (the sender still completes, SDR-RDMA's
    /// sender-local semantics). `end` is the receiver endpoint; `imm`
    /// is the send's immediate value (0 for one-sided writes) —
    /// reliability layers pack the block sequence number into it, which
    /// is what lets the trace oracle pair a drop with its eventual
    /// repair or escalation.
    PayloadDropped {
        conn: u32,
        end: u8,
        wr: u64,
        imm: u64,
    },
    /// The fault model corrupted a payload: it arrives and consumes its
    /// posted receive, but fails the receiver's integrity check and
    /// must be discarded by software. Same pairing fields as
    /// [`EventKind::PayloadDropped`].
    PayloadCorrupted {
        conn: u32,
        end: u8,
        wr: u64,
        imm: u64,
    },

    // ---- rdmc: protocol engine ------------------------------------
    /// The application submitted a multicast at the root.
    MessageSubmitted { size: u64 },
    /// A message transfer became active (`root` = this member holds
    /// every block from the start).
    TransferStarted { size: u64, blocks: u32, root: bool },
    /// An interrupted message resumed in a new epoch; `held` lists the
    /// blocks this member kept from the old epoch.
    ResumeStarted {
        size: u64,
        blocks: u32,
        held: Vec<u32>,
        already_delivered: bool,
    },
    /// The engine asked the application for a receive buffer.
    BufferRequested { size: u64 },
    /// We granted `to` a readiness credit (receive is pre-posted).
    ReadyGranted { to: u32 },
    /// `from` granted us a readiness credit.
    ReadyHeard { from: u32 },
    /// We posted a block send (schedule step `step` of epoch `epoch`).
    BlockSendIssued {
        to: u32,
        block: u32,
        step: u32,
        bytes: u64,
        epoch: u64,
    },
    /// A posted block send completed.
    BlockSendCompleted { to: u32 },
    /// The per-NIC admission layer released a block send to the fabric;
    /// `queued_ns` is how long admission control held it after the
    /// engine issued it (zero when a slot was free on arrival).
    SendAdmitted { to: u32, block: u32, queued_ns: u64 },
    /// A scheduled block arrived (`first` = it announced the message
    /// size and the transfer was not yet active).
    BlockArrived {
        from: u32,
        block: u32,
        step: u32,
        first: bool,
        epoch: u64,
    },
    /// The message completed locally (the delivery upcall).
    Delivered { size: u64 },
    /// A failure notice wedged this member.
    Wedged { failed: u32 },
    /// A new configuration epoch was installed on this member
    /// (`rank` is its new rank; `resume_blocks_out` counts the block
    /// transfers this member must send across all resume schedules).
    EpochInstalled {
        epoch: u64,
        rank: u32,
        num_nodes: u32,
        resumes: u32,
        resume_blocks_out: u32,
    },

    // ---- rdmc-sim: membership / reconfiguration -------------------
    /// A member first suspected an original rank of having failed.
    Suspected { failed: u32 },
    /// A view-table merge taught a member `newly` new suspicions.
    ViewMerged { from: u32, newly: u32 },
    /// The membership layer installed an agreed view group-wide.
    /// `survivors` are original ranks ascending (new rank = index).
    ReconfigInstalled {
        epoch: u64,
        survivors: Vec<u32>,
        removed: Vec<u32>,
        abandoned: Vec<u64>,
        resumed_blocks: u64,
        forced: bool,
    },

    // ---- rdmc-sim: reliability policies ---------------------------
    /// A receiver noticed a gap in the block sequence and NACKed the
    /// sender: `seq` is the first missing sequence number, `span` how
    /// many consecutive blocks the NACK covers.
    NackSent {
        conn: u32,
        end: u8,
        seq: u64,
        span: u64,
    },
    /// A sender retransmitted block `seq` (NACK response or timeout).
    RepairSent { conn: u32, seq: u64 },
    /// A missing block was filled at the receiver — by retransmission
    /// (`coded` = false) or erasure reconstruction (`coded` = true).
    RepairDelivered { conn: u32, seq: u64, coded: bool },
    /// A sender emitted the parity block closing the erasure-coding
    /// generation that ends at data sequence `seq` and spans `data`
    /// data blocks.
    ParitySent { conn: u32, seq: u64, data: u64 },
    /// Loss on `conn` exhausted the policy's retry budget; the member
    /// escalated to epoch recovery (or wedged, when recovery is off).
    LossEscalated { conn: u32 },

    // ---- rdmc-sim: atomic multicast (Derecho-style overlay) --------
    //
    // Scope convention: `group` is the atomic group's *anchor* RDMC
    // subgroup id, `rank` is the member's index in the atomic group's
    // (unrotated) member list, and `sender` fields use that same
    // member-index numbering.
    /// A message slot was appended to an atomic group's total order.
    /// `sender` owns the slot; `null` marks an elided send (an idle
    /// sender's slot resolved by a frontier bump, no data multicast).
    AtomicSubmitted {
        slot: u64,
        sender: u32,
        null: bool,
        size: u64,
    },
    /// This member's own received-frontier row for `sender` advanced to
    /// `frontier` (it has resolved that many of `sender`'s slots, in
    /// slot order).
    FrontierAdvanced { sender: u32, frontier: u64 },
    /// This member's *stability* frontier for `sender` — the min of the
    /// received-frontiers over all live members, read from its local
    /// SST replica — advanced to `frontier`.
    StableFrontier { sender: u32, frontier: u64 },
    /// The atomic delivery upcall: slot `slot` (the `seq`-th slot owned
    /// by `sender`) became stable and was delivered in total order.
    AtomicDelivered {
        slot: u64,
        sender: u32,
        seq: u64,
        size: u64,
    },
    /// A slot was ragged-trimmed during reconfiguration: its sender
    /// died before the slot could stabilize, so every survivor removes
    /// it from the total order (all-or-nothing delivery).
    AtomicTrimmed { slot: u64 },
}

struct Inner {
    mode: Mode,
    now: AtomicU64,
    seq: AtomicU64,
    dropped: AtomicU64,
    buf: Mutex<VecDeque<TraceEvent>>,
}

/// The recorder handle. Cloning is cheap (an `Arc` bump) and every
/// clone feeds the same buffer; the disabled recorder
/// ([`Recorder::disabled`], also [`Default`]) costs one branch per
/// instrumentation point and allocates nothing.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl Recorder {
    /// A recorder that records nothing (the default everywhere).
    pub const fn disabled() -> Self {
        Recorder(None)
    }

    /// An enabled recorder with the given capture mode.
    pub fn new(mode: Mode) -> Self {
        if let Mode::Ring(cap) = mode {
            assert!(cap > 0, "ring capacity must be positive");
        }
        Recorder(Some(Arc::new(Inner {
            mode,
            now: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::new()),
        })))
    }

    /// A flight recorder keeping the most recent `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Recorder::new(Mode::Ring(capacity))
    }

    /// A recorder keeping every event.
    pub fn full() -> Self {
        Recorder::new(Mode::Full)
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Updates the recorder's notion of "now" (virtual nanoseconds).
    /// Drivers with a clock (the fabric's event loop) call this so that
    /// clock-less layers (the sans-IO engine) timestamp correctly.
    #[inline]
    pub fn set_now(&self, t_ns: u64) {
        if let Some(inner) = &self.0 {
            inner.now.store(t_ns, Ordering::Relaxed);
        }
    }

    /// The recorder's current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.now.load(Ordering::Relaxed))
    }

    /// Records an event at the recorder's current time. The `kind`
    /// closure only runs when recording is enabled, so a disabled
    /// recorder never constructs the payload.
    #[inline]
    pub fn record(&self, scope: Scope, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.0 {
            let t = inner.now.load(Ordering::Relaxed);
            push(inner, t, scope, kind());
        }
    }

    /// Records an event at an explicit time (layers that carry their
    /// own clock, e.g. the flow network).
    #[inline]
    pub fn record_at(&self, t_ns: u64, scope: Scope, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.0 {
            push(inner, t_ns, scope, kind());
        }
    }

    /// A snapshot of the captured events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.0.as_ref().map_or_else(Vec::new, |inner| {
            inner
                .buf
                .lock()
                .expect("recorder poisoned")
                .iter()
                .cloned()
                .collect()
        })
    }

    /// Events dropped by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |inner| inner.dropped.load(Ordering::Relaxed))
    }

    /// Discards everything captured so far (the sequence counter keeps
    /// counting, so later events never reuse a sequence number).
    pub fn clear(&self) {
        if let Some(inner) = &self.0 {
            inner.buf.lock().expect("recorder poisoned").clear();
        }
    }
}

fn push(inner: &Inner, t_ns: u64, scope: Scope, kind: EventKind) {
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    let mut buf = inner.buf.lock().expect("recorder poisoned");
    if let Mode::Ring(cap) = inner.mode {
        if buf.len() == cap {
            buf.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
    buf.push_back(TraceEvent {
        seq,
        t_ns,
        scope,
        kind,
    });
}

// `Debug` without exposing the buffer: engines derive `Debug`, and a
// full event dump would swamp their output.
impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "Recorder(disabled)"),
            Some(inner) => write!(
                f,
                "Recorder({:?}, {} events)",
                inner.mode,
                inner.buf.lock().map(|b| b.len()).unwrap_or(0)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.set_now(123);
        assert_eq!(r.now(), 0);
        r.record(Scope::none(), || panic!("payload closure must not run"));
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_mode_keeps_everything_in_order() {
        let r = Recorder::full();
        r.set_now(10);
        r.record(Scope::node(1), || EventKind::NodeCrashed);
        r.set_now(20);
        r.record(Scope::group_rank(0, 2), || EventKind::Delivered { size: 5 });
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[0].t_ns, 10);
        assert_eq!(ev[1].seq, 1);
        assert_eq!(ev[1].t_ns, 20);
        assert_eq!(ev[1].scope, Scope::group_rank(0, 2));
    }

    #[test]
    fn ring_mode_drops_oldest() {
        let r = Recorder::ring(2);
        for i in 0..5u64 {
            r.set_now(i);
            r.record(Scope::none(), || EventKind::FlowStarted {
                flow: i,
                bytes: 1,
            });
        }
        let ev = r.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(ev[0].t_ns, 3);
        assert_eq!(ev[1].t_ns, 4);
        assert_eq!(ev[1].seq, 4, "sequence numbers survive drops");
    }

    #[test]
    fn clones_share_one_buffer() {
        let r = Recorder::full();
        let r2 = r.clone();
        r2.set_now(7);
        r2.record(Scope::none(), || EventKind::NodeCrashed);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.now(), 7);
    }

    #[test]
    fn clear_preserves_sequence_numbering() {
        let r = Recorder::full();
        r.record(Scope::none(), || EventKind::NodeCrashed);
        r.clear();
        r.record(Scope::none(), || EventKind::NodeCrashed);
        let ev = r.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].seq, 1);
    }
}
