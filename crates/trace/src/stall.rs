//! Stall attribution: explains *where* a multicast's end-to-end latency
//! went, the way the paper's evaluation (§5) explains its results.
//!
//! Starting from the last delivery, [`attribute`] walks the critical
//! path backwards through the trace. At each point it asks what the
//! current event was waiting on — the wire, the sender's send window,
//! a readiness credit from the receiver — attributes the interval down
//! to that predecessor, and jumps to it. Every jump covers a contiguous
//! interval, so the per-class totals **telescope to exactly the
//! end-to-end latency** no matter how the walk classifies; the classes
//! are:
//!
//! - `transfer` — ideal wire time for the blocks on the critical path
//!   (bytes at full link rate, plus propagation and NIC overhead per
//!   [`WireModel`]). This is the floor the schedule can never beat.
//! - `link_limited` — the slice of wire occupancy beyond ideal: the
//!   flow ran below full rate because links were shared.
//! - `sender_limited` — a block was held because its sender was busy
//!   with earlier scheduled sends (serialization on the send window).
//! - `receiver_limited` — a block was held because the receiver's
//!   readiness credit had not arrived: posting order, credit window,
//!   or credit propagation delay (§4.2's ready-for-block discipline).
//! - `schedule_idle` — the sender held the block with credit in hand
//!   and an idle wire; the schedule itself ordered the send later.
//!
//! The walk analyzes the first message of a group on a healthy
//! (no-reconfiguration) run — the Fig. 4 path.

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// The fabric parameters that define ideal wire time for a block.
#[derive(Clone, Copy, Debug)]
pub struct WireModel {
    /// Full link rate in gigabits per second.
    pub gbps: f64,
    /// One-way propagation latency, nanoseconds.
    pub latency_ns: u64,
    /// Fixed per-operation NIC overhead, nanoseconds.
    pub nic_op_ns: u64,
}

impl WireModel {
    /// Ideal nanoseconds for `bytes` at the full link rate: one bit per
    /// nanosecond per Gbit/s, plus propagation and NIC overhead.
    pub fn ideal_ns(&self, bytes: u64) -> u64 {
        let wire = (bytes as f64 * 8.0 / self.gbps).round() as u64;
        wire + self.latency_ns + self.nic_op_ns
    }
}

/// Where the end-to-end latency of one multicast went. The five class
/// fields sum to `end_to_end_ns` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Submit at the root to the last delivery.
    pub end_to_end_ns: u64,
    /// Ideal wire time on the critical path.
    pub transfer_ns: u64,
    /// Wire occupancy beyond ideal (shared links).
    pub link_limited_ns: u64,
    /// Waiting on the sender's send window.
    pub sender_limited_ns: u64,
    /// Waiting on receiver readiness credits.
    pub receiver_limited_ns: u64,
    /// Schedule-ordered idleness.
    pub schedule_idle_ns: u64,
}

impl StallBreakdown {
    /// Sum of the five attribution classes; equals `end_to_end_ns`.
    pub fn attributed_ns(&self) -> u64 {
        self.transfer_ns
            + self.link_limited_ns
            + self.sender_limited_ns
            + self.receiver_limited_ns
            + self.schedule_idle_ns
    }
}

/// One rank's life in a multicast, for the bench report's timelines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankTimeline {
    /// Rank within the group.
    pub rank: u32,
    /// First block arrival, if any (`None` at the root).
    pub first_block_ns: Option<u64>,
    /// Delivery upcall, if the rank completed.
    pub delivered_ns: Option<u64>,
    /// Blocks this rank received.
    pub blocks_received: u32,
    /// Blocks this rank sent.
    pub blocks_sent: u32,
}

/// Per-rank event index for one group, first message only.
#[derive(Default)]
struct RankIx {
    /// (t, from, block)
    arrivals: Vec<(u64, u32, u32)>,
    /// (t, to, block, bytes)
    issues: Vec<(u64, u32, u32, u64)>,
    /// (t, to)
    completions: Vec<(u64, u32)>,
    /// (t, from)
    heards: Vec<(u64, u32)>,
    /// (t, to)
    grants: Vec<(u64, u32)>,
    /// First `TransferStarted`: (t, root)
    start: Option<(u64, bool)>,
    delivered: Option<u64>,
}

fn index_group(events: &[TraceEvent], group: u32) -> (Option<u64>, BTreeMap<u32, RankIx>) {
    let mut ranks: BTreeMap<u32, RankIx> = BTreeMap::new();
    let mut submit = None;
    for ev in events {
        if ev.scope.group != Some(group) {
            continue;
        }
        let Some(rank) = ev.scope.rank else { continue };
        let ix = ranks.entry(rank).or_default();
        // First message only: ignore a rank's traffic after delivery.
        if ix.delivered.is_some() {
            continue;
        }
        match &ev.kind {
            EventKind::MessageSubmitted { .. } if submit.is_none() => {
                submit = Some(ev.t_ns);
            }
            EventKind::TransferStarted { root, .. } if ix.start.is_none() => {
                ix.start = Some((ev.t_ns, *root));
            }
            EventKind::BlockArrived { from, block, .. } => {
                ix.arrivals.push((ev.t_ns, *from, *block));
            }
            EventKind::BlockSendIssued {
                to, block, bytes, ..
            } => {
                ix.issues.push((ev.t_ns, *to, *block, *bytes));
            }
            EventKind::BlockSendCompleted { to } => ix.completions.push((ev.t_ns, *to)),
            EventKind::ReadyHeard { from } => ix.heards.push((ev.t_ns, *from)),
            EventKind::ReadyGranted { to } => ix.grants.push((ev.t_ns, *to)),
            EventKind::Delivered { .. } => ix.delivered = Some(ev.t_ns),
            _ => {}
        }
    }
    (submit, ranks)
}

/// `k`-th issue from this rank to `to` (0-indexed).
fn nth_issue_to(ix: &RankIx, to: u32, k: usize) -> Option<(u64, u32, u64)> {
    ix.issues
        .iter()
        .filter(|i| i.1 == to)
        .nth(k)
        .map(|&(t, _, block, bytes)| (t, block, bytes))
}

/// Ordinal of `arrivals[idx]` among arrivals from the same sender.
fn arrival_ordinal(ix: &RankIx, idx: usize) -> usize {
    let from = ix.arrivals[idx].1;
    ix.arrivals[..idx].iter().filter(|a| a.1 == from).count()
}

/// Whether this rank had block sends in flight or newly issued anywhere
/// in `[lo, hi)` — distinguishes sender-limited from schedule-idle.
fn sender_busy(ix: &RankIx, lo: u64, hi: u64) -> bool {
    if ix.issues.iter().any(|i| i.0 >= lo && i.0 < hi) {
        return true;
    }
    let issued = ix.issues.iter().filter(|i| i.0 <= lo).count();
    let done = ix.completions.iter().filter(|c| c.0 <= lo).count();
    issued > done
}

/// The critical-path walk's current position.
enum Node {
    /// `arrivals[idx]` at `rank`.
    Arr(u32, usize),
    /// `completions[idx]` at `rank`.
    Comp(u32, usize),
}

/// Attributes the first multicast of `group` (submit at the root to the
/// last delivery). Returns `None` when the trace has no submit or no
/// delivery for the group.
pub fn attribute(events: &[TraceEvent], group: u32, wire: &WireModel) -> Option<StallBreakdown> {
    let (submit, ranks) = index_group(events, group);
    let t_submit = submit?;
    let (&end_rank, t_end) = ranks
        .iter()
        .filter_map(|(r, ix)| ix.delivered.map(|t| (r, t)))
        .max_by_key(|&(r, t)| (t, *r))?;

    let mut b = StallBreakdown {
        end_to_end_ns: t_end.saturating_sub(t_submit),
        ..StallBreakdown::default()
    };
    // `frontier` is the lowest time covered so far; every attribution
    // extends coverage downward, which is what makes the sum exact.
    let mut frontier = t_end;
    let add = |acc: &mut u64, lo: u64, hi: u64, frontier: &mut u64| {
        let lo = lo.max(t_submit);
        let hi = hi.max(t_submit).min(*frontier);
        if hi > lo {
            *acc += hi - lo;
            *frontier = lo;
        } else {
            *frontier = (*frontier).min(lo.max(t_submit));
        }
    };

    // The delivery's predecessor: the rank's latest arrival, or (a root
    // delivering after its last send) latest send completion.
    let end_ix = &ranks[&end_rank];
    let last_arr = end_ix.arrivals.iter().rposition(|a| a.0 <= t_end);
    let last_comp = end_ix.completions.iter().rposition(|c| c.0 <= t_end);
    let mut node = match (last_arr, last_comp) {
        (None, None) => {
            // A one-rank group: nothing moved; all schedule time.
            b.schedule_idle_ns += b.end_to_end_ns;
            return Some(b);
        }
        (None, Some(c)) => Node::Comp(end_rank, c),
        (Some(a), None) => Node::Arr(end_rank, a),
        (Some(a), Some(c)) => {
            if end_ix.completions[c].0 > end_ix.arrivals[a].0 {
                Node::Comp(end_rank, c)
            } else {
                Node::Arr(end_rank, a)
            }
        }
    };
    {
        let t_node = match node {
            Node::Arr(r, i) => ranks[&r].arrivals[i].0,
            Node::Comp(r, i) => ranks[&r].completions[i].0,
        };
        add(&mut b.receiver_limited_ns, t_node, t_end, &mut frontier);
    }

    let total_points: usize = ranks
        .values()
        .map(|ix| ix.arrivals.len() + ix.completions.len())
        .sum();
    let mut iters = 0usize;

    loop {
        iters += 1;
        if iters > total_points + 16 {
            break; // degenerate trace; remainder attributed below
        }
        // Resolve the current point to the send issue behind it.
        let (sender, issue_k, t_wire_end) = match node {
            Node::Arr(r, i) => {
                let (t_arr, from, _) = ranks[&r].arrivals[i];
                (from, arrival_ordinal(&ranks[&r], i), t_arr)
            }
            Node::Comp(r, i) => {
                let (t_comp, to) = ranks[&r].completions[i];
                let k = ranks[&r].completions[..i]
                    .iter()
                    .filter(|c| c.1 == to)
                    .count();
                (r, k, t_comp)
            }
        };
        let to = match node {
            Node::Arr(r, _) => r,
            Node::Comp(r, i) => ranks[&r].completions[i].1,
        };
        let Some(s_ix) = ranks.get(&sender) else {
            break;
        };
        let Some((t_issue, block, bytes)) = nth_issue_to(s_ix, to, issue_k) else {
            break;
        };

        // Wire occupancy: ideal transfer plus link contention.
        let actual = t_wire_end.saturating_sub(t_issue);
        let ideal = wire.ideal_ns(bytes).min(actual);
        add(
            &mut b.link_limited_ns,
            t_issue + ideal,
            t_wire_end,
            &mut frontier,
        );
        add(&mut b.transfer_ns, t_issue, t_issue + ideal, &mut frontier);

        // Why did the sender issue at t_issue and not earlier?
        let is_root = s_ix.start.is_some_and(|(_, root)| root);
        let t_have = if is_root {
            Some(s_ix.start.map_or(t_submit, |(t, _)| t))
        } else {
            s_ix.arrivals
                .iter()
                .position(|a| a.2 == block && a.0 <= t_issue)
                .map(|i| s_ix.arrivals[i].0)
        };
        let t_credit = s_ix
            .heards
            .iter()
            .filter(|h| h.1 == to)
            .nth(issue_k)
            .map(|h| h.0);
        let t_have_v = t_have.unwrap_or(t_submit);
        let t_credit_v = t_credit.unwrap_or(t_submit);
        let t_gate = t_have_v.max(t_credit_v);

        let busy_class = if sender_busy(s_ix, t_gate, t_issue) {
            &mut b.sender_limited_ns
        } else {
            &mut b.schedule_idle_ns
        };
        add(busy_class, t_gate, t_issue, &mut frontier);

        if t_have_v >= t_credit_v {
            // Binding constraint: block acquisition at the sender.
            if is_root {
                add(&mut b.sender_limited_ns, t_submit, t_have_v, &mut frontier);
                break;
            }
            match s_ix
                .arrivals
                .iter()
                .position(|a| a.2 == block && a.0 <= t_issue)
            {
                Some(i) => node = Node::Arr(sender, i),
                None => break,
            }
        } else {
            // Binding constraint: the receiver's readiness credit.
            let r_ix = &ranks[&to];
            let t_grant = r_ix
                .grants
                .iter()
                .filter(|g| g.1 == sender)
                .nth(issue_k)
                .map_or(t_submit, |g| g.0);
            add(
                &mut b.receiver_limited_ns,
                t_grant,
                t_credit_v,
                &mut frontier,
            );
            // Why did the receiver grant only then? It was digesting
            // its previous arrival (posting order), or still setting
            // up. Either way the wait is on the receiver.
            match r_ix.arrivals.iter().rposition(|a| a.0 <= t_grant) {
                Some(i) => {
                    add(
                        &mut b.receiver_limited_ns,
                        r_ix.arrivals[i].0,
                        t_grant,
                        &mut frontier,
                    );
                    node = Node::Arr(to, i);
                }
                None => {
                    add(&mut b.receiver_limited_ns, t_submit, t_grant, &mut frontier);
                    break;
                }
            }
        }
    }

    // Any uncovered remainder (degenerate traces only) lands in
    // schedule_idle so the invariant `attributed == end_to_end` holds
    // unconditionally.
    if frontier > t_submit {
        b.schedule_idle_ns += frontier - t_submit;
    }
    Some(b)
}

/// Aggregate stall split of every block send one group moved over a
/// whole run — the multi-tenant counterpart of [`attribute`], which
/// walks a single message's critical path. The three time classes
/// cover each send's issue-to-completion span:
///
/// - `transfer_ns` — ideal wire time per [`WireModel`];
/// - `sender_limited_ns` — time the per-NIC admission layer held sends
///   after the engine issued them ([`EventKind::SendAdmitted`]);
/// - `link_limited_ns` — the remainder: the flow ran below full rate
///   because links were shared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStall {
    /// Completed block sends counted.
    pub sends: u64,
    /// Bytes those sends moved.
    pub bytes: u64,
    /// Ideal wire time across the counted sends.
    pub transfer_ns: u64,
    /// Admission-queue wait (pacer holds).
    pub sender_limited_ns: u64,
    /// Wire occupancy beyond ideal (shared links).
    pub link_limited_ns: u64,
}

impl GroupStall {
    /// Total issue-to-completion time across the counted sends.
    pub fn total_ns(&self) -> u64 {
        self.transfer_ns + self.sender_limited_ns + self.link_limited_ns
    }
}

/// Splits every completed block send in the trace into ideal transfer,
/// admission wait, and link contention, grouped by group id.
///
/// Sends to the same peer complete in post order, so each completion is
/// paired with the matching issue per (rank, destination) stream; the
/// aggregate span is invariant under pairing, which keeps the totals
/// exact even when an admission policy reorders sends within a stream.
/// Issues that never completed (flushed by a failure) are left out.
pub fn rollup_by_group(events: &[TraceEvent], wire: &WireModel) -> BTreeMap<u32, GroupStall> {
    // (group, rank, to) -> issue (t, bytes) / completion t streams.
    let mut issues: BTreeMap<(u32, u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
    let mut comps: BTreeMap<(u32, u32, u32), Vec<u64>> = BTreeMap::new();
    let mut queued: BTreeMap<u32, u64> = BTreeMap::new();
    for ev in events {
        let (Some(group), Some(rank)) = (ev.scope.group, ev.scope.rank) else {
            continue;
        };
        match &ev.kind {
            EventKind::BlockSendIssued { to, bytes, .. } => {
                issues
                    .entry((group, rank, *to))
                    .or_default()
                    .push((ev.t_ns, *bytes));
            }
            EventKind::BlockSendCompleted { to } => {
                comps.entry((group, rank, *to)).or_default().push(ev.t_ns);
            }
            EventKind::SendAdmitted { queued_ns, .. } => {
                *queued.entry(group).or_default() += queued_ns;
            }
            _ => {}
        }
    }
    let mut out: BTreeMap<u32, GroupStall> = BTreeMap::new();
    for (key, issued) in &issues {
        let group = key.0;
        let done = comps.get(key).map_or(&[][..], Vec::as_slice);
        let st = out.entry(group).or_default();
        for (&(t_issue, bytes), &t_done) in issued.iter().zip(done) {
            let span = t_done.saturating_sub(t_issue);
            let ideal = wire.ideal_ns(bytes).min(span);
            st.sends += 1;
            st.bytes += bytes;
            st.transfer_ns += ideal;
            st.link_limited_ns += span - ideal;
        }
    }
    // Admission wait is part of the issue-to-completion span; move it
    // out of the contention class it initially landed in.
    for (group, q) in queued {
        if let Some(st) = out.get_mut(&group) {
            let q = q.min(st.link_limited_ns);
            st.sender_limited_ns += q;
            st.link_limited_ns -= q;
        }
    }
    out
}

/// Per-rank timelines for the first message of `group`, rank order.
pub fn timelines(events: &[TraceEvent], group: u32) -> Vec<RankTimeline> {
    let (_, ranks) = index_group(events, group);
    ranks
        .into_iter()
        .map(|(rank, ix)| RankTimeline {
            rank,
            first_block_ns: ix.arrivals.first().map(|a| a.0),
            delivered_ns: ix.delivered,
            blocks_received: ix.arrivals.len() as u32,
            blocks_sent: ix.issues.len() as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Scope};

    /// Two ranks, two 1000-byte blocks over an 8 Gb/s, 50 ns wire:
    /// hand-computed critical path.
    fn two_rank_trace() -> Vec<TraceEvent> {
        let r = Recorder::full();
        let g = 0;
        let at = |t: u64, scope: Scope, k: EventKind, rec: &Recorder| rec.record_at(t, scope, || k);
        at(
            0,
            Scope::group_rank(g, 0),
            EventKind::MessageSubmitted { size: 2000 },
            &r,
        );
        at(
            0,
            Scope::group_rank(g, 0),
            EventKind::TransferStarted {
                size: 2000,
                blocks: 2,
                root: true,
            },
            &r,
        );
        at(
            0,
            Scope::group_rank(g, 1),
            EventKind::ReadyGranted { to: 0 },
            &r,
        );
        at(
            0,
            Scope::group_rank(g, 1),
            EventKind::ReadyGranted { to: 0 },
            &r,
        );
        at(
            50,
            Scope::group_rank(g, 0),
            EventKind::ReadyHeard { from: 1 },
            &r,
        );
        at(
            60,
            Scope::group_rank(g, 0),
            EventKind::ReadyHeard { from: 1 },
            &r,
        );
        for (b, (t_issue, t_done, t_arr)) in [
            (0u32, (50u64, 1050u64, 1100u64)),
            (1u32, (1050, 2050, 2100)),
        ] {
            at(
                t_issue,
                Scope::group_rank(g, 0),
                EventKind::BlockSendIssued {
                    to: 1,
                    block: b,
                    step: b,
                    bytes: 1000,
                    epoch: 0,
                },
                &r,
            );
            at(
                t_done,
                Scope::group_rank(g, 0),
                EventKind::BlockSendCompleted { to: 1 },
                &r,
            );
            at(
                t_arr,
                Scope::group_rank(g, 1),
                EventKind::BlockArrived {
                    from: 0,
                    block: b,
                    step: b,
                    first: b == 0,
                    epoch: 0,
                },
                &r,
            );
        }
        at(
            2050,
            Scope::group_rank(g, 0),
            EventKind::Delivered { size: 2000 },
            &r,
        );
        at(
            2100,
            Scope::group_rank(g, 1),
            EventKind::Delivered { size: 2000 },
            &r,
        );
        r.events()
    }

    #[test]
    fn breakdown_sums_exactly_and_classifies() {
        let wire = WireModel {
            gbps: 8.0,
            latency_ns: 50,
            nic_op_ns: 0,
        };
        let b = attribute(&two_rank_trace(), 0, &wire).expect("breakdown");
        assert_eq!(b.end_to_end_ns, 2100);
        assert_eq!(b.attributed_ns(), b.end_to_end_ns);
        // Critical path: block 1 arrives at 2100, issued at 1050
        // (ideal 1050 ns: fully transfer-bound), held 990 ns behind
        // block 0's send (sender-limited, gate at credit t=60), and
        // 60 ns of credit propagation (receiver-limited).
        assert_eq!(b.transfer_ns, 1050);
        assert_eq!(b.link_limited_ns, 0);
        assert_eq!(b.sender_limited_ns, 990);
        assert_eq!(b.receiver_limited_ns, 60);
        assert_eq!(b.schedule_idle_ns, 0);
    }

    #[test]
    fn attribution_never_loses_time_on_sparse_traces() {
        // A trace with a submit and a delivery but no block events at
        // the delivering rank still balances.
        let r = Recorder::full();
        r.record_at(0, Scope::group_rank(0, 0), || EventKind::MessageSubmitted {
            size: 1,
        });
        r.record_at(500, Scope::group_rank(0, 0), || EventKind::Delivered {
            size: 1,
        });
        let wire = WireModel {
            gbps: 100.0,
            latency_ns: 1,
            nic_op_ns: 1,
        };
        let b = attribute(&r.events(), 0, &wire).expect("breakdown");
        assert_eq!(b.end_to_end_ns, 500);
        assert_eq!(b.attributed_ns(), 500);
    }

    #[test]
    fn rollup_splits_admission_wait_from_link_contention() {
        let wire = WireModel {
            gbps: 8.0,
            latency_ns: 50,
            nic_op_ns: 0,
        };
        let r = Recorder::full();
        // Group 0: one 1000-byte send (ideal 1050 ns) issued at t=0,
        // held 200 ns by admission, completed at 1500: 250 ns of link
        // contention remain.
        r.record_at(0, Scope::group_rank(0, 0), || EventKind::BlockSendIssued {
            to: 1,
            block: 0,
            step: 0,
            bytes: 1000,
            epoch: 0,
        });
        r.record_at(200, Scope::group_rank(0, 0), || EventKind::SendAdmitted {
            to: 1,
            block: 0,
            queued_ns: 200,
        });
        r.record_at(1500, Scope::group_rank(0, 0), || {
            EventKind::BlockSendCompleted { to: 1 }
        });
        // Group 1: an unpaced send at the ideal rate — pure transfer.
        r.record_at(0, Scope::group_rank(1, 0), || EventKind::BlockSendIssued {
            to: 1,
            block: 0,
            step: 0,
            bytes: 1000,
            epoch: 0,
        });
        r.record_at(1050, Scope::group_rank(1, 0), || {
            EventKind::BlockSendCompleted { to: 1 }
        });
        // A dangling issue (never completed) must not be counted.
        r.record_at(2000, Scope::group_rank(1, 0), || {
            EventKind::BlockSendIssued {
                to: 1,
                block: 1,
                step: 1,
                bytes: 1000,
                epoch: 0,
            }
        });
        let rollup = rollup_by_group(&r.events(), &wire);
        assert_eq!(rollup.len(), 2);
        let g0 = rollup[&0];
        assert_eq!(g0.sends, 1);
        assert_eq!(g0.bytes, 1000);
        assert_eq!(g0.transfer_ns, 1050);
        assert_eq!(g0.sender_limited_ns, 200);
        assert_eq!(g0.link_limited_ns, 250);
        assert_eq!(g0.total_ns(), 1500);
        let g1 = rollup[&1];
        assert_eq!(g1.sends, 1);
        assert_eq!(g1.transfer_ns, 1050);
        assert_eq!(g1.sender_limited_ns, 0);
        assert_eq!(g1.link_limited_ns, 0);
    }

    #[test]
    fn rollup_totals_survive_reordered_admission() {
        // Two sends on one stream admitted out of issue order: the
        // completion order follows the posts, but the aggregate span —
        // and so the class totals — must still balance.
        let wire = WireModel {
            gbps: 8.0,
            latency_ns: 0,
            nic_op_ns: 0,
        };
        let r = Recorder::full();
        for (t_issue, bytes) in [(0u64, 1000u64), (100, 1000)] {
            r.record_at(t_issue, Scope::group_rank(0, 0), || {
                EventKind::BlockSendIssued {
                    to: 1,
                    block: 0,
                    step: 0,
                    bytes,
                    epoch: 0,
                }
            });
        }
        for t_done in [1100u64, 2100] {
            r.record_at(t_done, Scope::group_rank(0, 0), || {
                EventKind::BlockSendCompleted { to: 1 }
            });
        }
        let rollup = rollup_by_group(&r.events(), &wire);
        let g0 = rollup[&0];
        assert_eq!(g0.sends, 2);
        // Aggregate span 3100 = 2 * 1000-ns ideal + 1100 contention,
        // regardless of which completion belonged to which issue.
        assert_eq!(g0.total_ns(), 3100);
        assert_eq!(g0.transfer_ns, 2000);
        assert_eq!(g0.link_limited_ns, 1100);
    }

    #[test]
    fn timelines_report_per_rank_progress() {
        let tl = timelines(&two_rank_trace(), 0);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].rank, 0);
        assert_eq!(tl[0].blocks_sent, 2);
        assert_eq!(tl[0].first_block_ns, None);
        assert_eq!(tl[0].delivered_ns, Some(2050));
        assert_eq!(tl[1].blocks_received, 2);
        assert_eq!(tl[1].first_block_ns, Some(1100));
        assert_eq!(tl[1].delivered_ns, Some(2100));
    }
}
