//! Deterministic trace exporters.
//!
//! Two formats, both hand-rolled (the workspace vendors no JSON crate)
//! and both byte-stable given the same event stream, which is what lets
//! the golden-trace tests compare bit-for-bit:
//!
//! - [`to_jsonl`] — one JSON object per event per line, keys in a fixed
//!   order. This is the golden-trace format.
//! - [`to_chrome_trace`] — the Chrome `trace_event` JSON format; open
//!   the file in `chrome://tracing` or <https://ui.perfetto.dev>. Each
//!   group renders as a process with one thread per rank, fabric and
//!   network events land on process 0, flows render as async spans and
//!   block sends as duration spans.

use crate::{EventKind, TraceEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// A JSON-serializable field value.
enum Val {
    U(u64),
    F(f64),
    B(bool),
    L(Vec<u64>),
}

fn list32(xs: &[u32]) -> Val {
    Val::L(xs.iter().map(|&x| u64::from(x)).collect())
}

/// The stable wire name and field list of an event kind. Shared by both
/// exporters so the two formats can never drift apart.
fn fields(kind: &EventKind) -> (&'static str, Vec<(&'static str, Val)>) {
    use EventKind::*;
    use Val::{B, F, U};
    match kind {
        FlowStarted { flow, bytes } => (
            "flow_started",
            vec![("flow", U(*flow)), ("bytes", U(*bytes))],
        ),
        FlowRateChanged { flow, gbps } => (
            "flow_rate_changed",
            vec![("flow", U(*flow)), ("gbps", F(*gbps))],
        ),
        FlowFinished { flow, aborted } => (
            "flow_finished",
            vec![("flow", U(*flow)), ("aborted", B(*aborted))],
        ),
        SendPosted {
            conn,
            end,
            wr,
            bytes,
        } => (
            "send_posted",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
                ("bytes", U(*bytes)),
            ],
        ),
        RecvPosted { conn, end, wr } => (
            "recv_posted",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
            ],
        ),
        WritePosted {
            conn,
            end,
            tag,
            bytes,
        } => (
            "write_posted",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("tag", U(*tag)),
                ("bytes", U(*bytes)),
            ],
        ),
        WrCompleted {
            conn,
            end,
            wr,
            recv,
        } => (
            "wr_completed",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
                ("recv", B(*recv)),
            ],
        ),
        WriteDelivered { conn, end, tag } => (
            "write_delivered",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("tag", U(*tag)),
            ],
        ),
        RnrArmed { conn, dir } => (
            "rnr_armed",
            vec![("conn", U(u64::from(*conn))), ("dir", U(u64::from(*dir)))],
        ),
        WrFlushed {
            conn,
            end,
            wr,
            recv,
        } => (
            "wr_flushed",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
                ("recv", B(*recv)),
            ],
        ),
        QpBroken { conn } => ("qp_broken", vec![("conn", U(u64::from(*conn)))]),
        NodeCrashed => ("node_crashed", vec![]),
        PayloadDropped { conn, end, wr, imm } => (
            "payload_dropped",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
                ("imm", U(*imm)),
            ],
        ),
        PayloadCorrupted { conn, end, wr, imm } => (
            "payload_corrupted",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("wr", U(*wr)),
                ("imm", U(*imm)),
            ],
        ),
        SendAdmitted {
            to,
            block,
            queued_ns,
        } => (
            "send_admitted",
            vec![
                ("to", U(u64::from(*to))),
                ("block", U(u64::from(*block))),
                ("queued_ns", U(*queued_ns)),
            ],
        ),
        MessageSubmitted { size } => ("message_submitted", vec![("size", U(*size))]),
        TransferStarted { size, blocks, root } => (
            "transfer_started",
            vec![
                ("size", U(*size)),
                ("blocks", U(u64::from(*blocks))),
                ("root", B(*root)),
            ],
        ),
        ResumeStarted {
            size,
            blocks,
            held,
            already_delivered,
        } => (
            "resume_started",
            vec![
                ("size", U(*size)),
                ("blocks", U(u64::from(*blocks))),
                ("held", list32(held)),
                ("already_delivered", B(*already_delivered)),
            ],
        ),
        BufferRequested { size } => ("buffer_requested", vec![("size", U(*size))]),
        ReadyGranted { to } => ("ready_granted", vec![("to", U(u64::from(*to)))]),
        ReadyHeard { from } => ("ready_heard", vec![("from", U(u64::from(*from)))]),
        BlockSendIssued {
            to,
            block,
            step,
            bytes,
            epoch,
        } => (
            "block_send_issued",
            vec![
                ("to", U(u64::from(*to))),
                ("block", U(u64::from(*block))),
                ("step", U(u64::from(*step))),
                ("bytes", U(*bytes)),
                ("epoch", U(*epoch)),
            ],
        ),
        BlockSendCompleted { to } => ("block_send_completed", vec![("to", U(u64::from(*to)))]),
        BlockArrived {
            from,
            block,
            step,
            first,
            epoch,
        } => (
            "block_arrived",
            vec![
                ("from", U(u64::from(*from))),
                ("block", U(u64::from(*block))),
                ("step", U(u64::from(*step))),
                ("first", B(*first)),
                ("epoch", U(*epoch)),
            ],
        ),
        Delivered { size } => ("delivered", vec![("size", U(*size))]),
        Wedged { failed } => ("wedged", vec![("failed", U(u64::from(*failed)))]),
        EpochInstalled {
            epoch,
            rank,
            num_nodes,
            resumes,
            resume_blocks_out,
        } => (
            "epoch_installed",
            vec![
                ("epoch", U(*epoch)),
                ("rank", U(u64::from(*rank))),
                ("num_nodes", U(u64::from(*num_nodes))),
                ("resumes", U(u64::from(*resumes))),
                ("resume_blocks_out", U(u64::from(*resume_blocks_out))),
            ],
        ),
        Suspected { failed } => ("suspected", vec![("failed", U(u64::from(*failed)))]),
        ViewMerged { from, newly } => (
            "view_merged",
            vec![
                ("from", U(u64::from(*from))),
                ("newly", U(u64::from(*newly))),
            ],
        ),
        ReconfigInstalled {
            epoch,
            survivors,
            removed,
            abandoned,
            resumed_blocks,
            forced,
        } => (
            "reconfig_installed",
            vec![
                ("epoch", U(*epoch)),
                ("survivors", list32(survivors)),
                ("removed", list32(removed)),
                ("abandoned", Val::L(abandoned.clone())),
                ("resumed_blocks", U(*resumed_blocks)),
                ("forced", B(*forced)),
            ],
        ),
        NackSent {
            conn,
            end,
            seq,
            span,
        } => (
            "nack_sent",
            vec![
                ("conn", U(u64::from(*conn))),
                ("end", U(u64::from(*end))),
                ("seq", U(*seq)),
                ("span", U(*span)),
            ],
        ),
        RepairSent { conn, seq } => (
            "repair_sent",
            vec![("conn", U(u64::from(*conn))), ("seq", U(*seq))],
        ),
        RepairDelivered { conn, seq, coded } => (
            "repair_delivered",
            vec![
                ("conn", U(u64::from(*conn))),
                ("seq", U(*seq)),
                ("coded", B(*coded)),
            ],
        ),
        ParitySent { conn, seq, data } => (
            "parity_sent",
            vec![
                ("conn", U(u64::from(*conn))),
                ("seq", U(*seq)),
                ("data", U(*data)),
            ],
        ),
        LossEscalated { conn } => ("loss_escalated", vec![("conn", U(u64::from(*conn)))]),
        AtomicSubmitted {
            slot,
            sender,
            null,
            size,
        } => (
            "atomic_submitted",
            vec![
                ("slot", U(*slot)),
                ("sender", U(u64::from(*sender))),
                ("null", B(*null)),
                ("size", U(*size)),
            ],
        ),
        FrontierAdvanced { sender, frontier } => (
            "frontier_advanced",
            vec![
                ("sender", U(u64::from(*sender))),
                ("frontier", U(*frontier)),
            ],
        ),
        StableFrontier { sender, frontier } => (
            "stable_frontier",
            vec![
                ("sender", U(u64::from(*sender))),
                ("frontier", U(*frontier)),
            ],
        ),
        AtomicDelivered {
            slot,
            sender,
            seq,
            size,
        } => (
            "atomic_delivered",
            vec![
                ("slot", U(*slot)),
                ("sender", U(u64::from(*sender))),
                ("seq", U(*seq)),
                ("size", U(*size)),
            ],
        ),
        AtomicTrimmed { slot } => ("atomic_trimmed", vec![("slot", U(*slot))]),
    }
}

fn write_val(out: &mut String, v: &Val) {
    match v {
        Val::U(x) => {
            let _ = write!(out, "{x}");
        }
        // `{:?}` is Rust's shortest-roundtrip float form; always a
        // valid JSON number for the finite rates we record.
        Val::F(x) => {
            let _ = write!(out, "{x:?}");
        }
        Val::B(x) => {
            let _ = write!(out, "{x}");
        }
        Val::L(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{x}");
            }
            out.push(']');
        }
    }
}

/// Serializes events as JSON Lines, one event per line, with a fixed
/// key order: `seq`, `t_ns`, the present scope coordinates (`node`,
/// `group`, `rank`), `kind`, then the kind's fields. Byte-stable for a
/// given event stream — the golden-trace format.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let (name, fs) = fields(&ev.kind);
        let _ = write!(out, "{{\"seq\":{},\"t_ns\":{}", ev.seq, ev.t_ns);
        if let Some(n) = ev.scope.node {
            let _ = write!(out, ",\"node\":{n}");
        }
        if let Some(g) = ev.scope.group {
            let _ = write!(out, ",\"group\":{g}");
        }
        if let Some(r) = ev.scope.rank {
            let _ = write!(out, ",\"rank\":{r}");
        }
        let _ = write!(out, ",\"kind\":\"{name}\"");
        for (k, v) in &fs {
            let _ = write!(out, ",\"{k}\":");
            write_val(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

/// Microseconds with nanosecond precision, rendered without going
/// through floating point so the output is byte-stable.
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

fn args_json(fs: &[(&'static str, Val)]) -> String {
    let mut out = String::new();
    out.push('{');
    for (i, (k, v)) in fs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        write_val(&mut out, v);
    }
    out.push('}');
    out
}

/// Serializes events in the Chrome `trace_event` JSON format.
///
/// Layout: process 0 is the fabric/network (one thread per node);
/// group `g` is process `g + 1` (one thread per rank). Flows render as
/// async spans, block sends as duration spans from issue to sender-side
/// completion, and everything else as instant events.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::new();

    // Process-name metadata, fabric first then groups in order.
    let groups: BTreeSet<u32> = events.iter().filter_map(|e| e.scope.group).collect();
    entries.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"fabric\"}}"
            .to_string(),
    );
    for g in &groups {
        entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"group {g}\"}}}}",
            g + 1
        ));
    }

    // Pending block sends awaiting their sender-side completion,
    // FIFO per (group, rank, receiver) — the engine completes sends to
    // one peer in issue order.
    type SendKey = (u32, u32, u32);
    let mut pending: BTreeMap<SendKey, VecDeque<(u64, u32, u32, u64)>> = BTreeMap::new();

    for ev in events {
        let (pid, tid) = match ev.scope.group {
            Some(g) => (g + 1, ev.scope.rank.unwrap_or(0)),
            None => (0, ev.scope.node.unwrap_or(0)),
        };
        let ts = micros(ev.t_ns);
        let (name, fs) = fields(&ev.kind);
        match &ev.kind {
            EventKind::FlowStarted { flow, .. } => {
                entries.push(format!(
                    "{{\"name\":\"flow\",\"cat\":\"net\",\"ph\":\"b\",\"id\":{flow},\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
                    args_json(&fs)
                ));
            }
            EventKind::FlowFinished { flow, .. } => {
                entries.push(format!(
                    "{{\"name\":\"flow\",\"cat\":\"net\",\"ph\":\"e\",\"id\":{flow},\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
                    args_json(&fs)
                ));
            }
            EventKind::BlockSendIssued {
                to,
                block,
                step,
                bytes,
                ..
            } => {
                if let (Some(g), Some(r)) = (ev.scope.group, ev.scope.rank) {
                    pending
                        .entry((g, r, *to))
                        .or_default()
                        .push_back((ev.t_ns, *block, *step, *bytes));
                }
                entries.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
                    args_json(&fs)
                ));
            }
            EventKind::BlockSendCompleted { to } => {
                let issued = ev
                    .scope
                    .group
                    .zip(ev.scope.rank)
                    .and_then(|(g, r)| pending.get_mut(&(g, r, *to))?.pop_front());
                if let Some((t0, block, step, bytes)) = issued {
                    entries.push(format!(
                        "{{\"name\":\"send b{block} -> r{to}\",\"cat\":\"send\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\
                         \"args\":{{\"to\":{to},\"block\":{block},\"step\":{step},\
                         \"bytes\":{bytes}}}}}",
                        micros(t0),
                        micros(ev.t_ns.saturating_sub(t0)),
                    ));
                } else {
                    entries.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                         \"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
                        args_json(&fs)
                    ));
                }
            }
            _ => {
                entries.push(format!(
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
                    args_json(&fs)
                ));
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Scope};

    fn sample() -> Vec<TraceEvent> {
        let r = Recorder::full();
        r.set_now(1_000);
        r.record(Scope::group_rank(0, 0), || EventKind::MessageSubmitted {
            size: 64,
        });
        r.record(Scope::group_rank(0, 0), || EventKind::BlockSendIssued {
            to: 1,
            block: 0,
            step: 0,
            bytes: 64,
            epoch: 0,
        });
        r.record_at(1_500, Scope::none(), || EventKind::FlowStarted {
            flow: 7,
            bytes: 64,
        });
        r.set_now(2_345);
        r.record(Scope::none(), || EventKind::FlowRateChanged {
            flow: 7,
            gbps: 12.5,
        });
        r.record(Scope::none(), || EventKind::FlowFinished {
            flow: 7,
            aborted: false,
        });
        r.record(Scope::group_rank(0, 0), || EventKind::BlockSendCompleted {
            to: 1,
        });
        r.record(Scope::group_rank(0, 1), || EventKind::BlockArrived {
            from: 0,
            block: 0,
            step: 0,
            first: true,
            epoch: 0,
        });
        r.record(Scope::group_rank(0, 1), || EventKind::Delivered {
            size: 64,
        });
        r.events()
    }

    #[test]
    fn jsonl_is_stable_and_line_per_event() {
        let ev = sample();
        let a = to_jsonl(&ev);
        let b = to_jsonl(&ev);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), ev.len());
        assert!(a.starts_with(
            "{\"seq\":0,\"t_ns\":1000,\"group\":0,\"rank\":0,\
             \"kind\":\"message_submitted\",\"size\":64}"
        ));
        assert!(a.contains("\"kind\":\"flow_rate_changed\",\"flow\":7,\"gbps\":12.5"));
    }

    #[test]
    fn chrome_trace_pairs_sends_and_flows() {
        let ev = sample();
        let out = to_chrome_trace(&ev);
        assert!(
            out.contains("\"ph\":\"X\""),
            "block send should render as a span"
        );
        assert!(out.contains("\"ph\":\"b\"") && out.contains("\"ph\":\"e\""));
        assert!(out.contains("\"name\":\"send b0 -> r1\""));
        assert!(out.contains("\"ts\":1.000,\"dur\":1.345"));
        assert_eq!(
            out,
            to_chrome_trace(&ev),
            "chrome export must be deterministic"
        );
    }
}
