//! Pins the multi-tenant traffic engine's headline result: at the
//! designated overload point on the oversubscribed fabric (8 shards
//! offered 1.5x the per-shard sustainable rate), FIFO admission with a
//! per-NIC bound of 5 delivers a lower p99 latency than the unpaced
//! work-conserving baseline, and the flight-recorder stall rollup
//! explains the gap: pacing converts link-limited contention into
//! sender-side admission wait.

use rdmc_sim::{ClusterSpec, OpenLoopArrival, OpenLoopOutcome, PacerConfig, PacingPolicy};
use workloads::stats;
use workloads::ShardedWorkload;

/// The sweep's oversubscribed 8-shard overload point, at the quick
/// message count so the test stays fast.
fn overload_point(pacing: Option<PacerConfig>) -> OpenLoopOutcome {
    let spec = ClusterSpec::apt(4, 4);
    let workload = ShardedWorkload {
        seed: 0x1DE5,
        nodes: 16,
        shards: 8,
        replication_factor: 4,
        offered_gbps: 1.5 * 7.0 * 8.0,
        median_bytes: 1.7e6,
        mean_bytes: 2e6,
        min_bytes: 256 << 10,
        max_bytes: 6 << 20,
    };
    let memberships: Vec<Vec<usize>> = (0..8).map(|s| workload.members(s)).collect();
    let arrivals: Vec<OpenLoopArrival> = workload
        .generate(64)
        .into_iter()
        .map(|a| OpenLoopArrival {
            at_ns: a.at_ns,
            group_index: a.shard,
            size: a.size,
        })
        .collect();
    rdmc_sim::run_open_loop(&spec, &memberships, &arrivals, 1 << 17, pacing, true)
}

fn p99_ms(outcome: &OpenLoopOutcome) -> f64 {
    let latencies: Vec<f64> = outcome
        .all_latencies()
        .iter()
        .map(|l| l.as_secs_f64() * 1e3)
        .collect();
    stats::percentile(&latencies, 99.0)
}

fn stall_totals(outcome: &OpenLoopOutcome) -> (u64, u64) {
    let mut sender = 0;
    let mut link = 0;
    for g in &outcome.per_group {
        let s = g.stall.as_ref().expect("traced run has a stall rollup");
        sender += s.sender_limited_ns;
        link += s.link_limited_ns;
    }
    (sender, link)
}

#[test]
fn pacing_beats_unpaced_p99_at_overload_on_oversubscribed() {
    let unpaced = overload_point(None);
    let paced = overload_point(Some(PacerConfig::new(5, PacingPolicy::Fifo)));

    assert_eq!(
        unpaced.all_latencies().len(),
        paced.all_latencies().len(),
        "both runs must deliver every message"
    );
    let (un_p99, pa_p99) = (p99_ms(&unpaced), p99_ms(&paced));
    assert!(
        pa_p99 < un_p99,
        "fifo admission should beat unpaced p99 at overload: paced {pa_p99:.3} ms \
         vs unpaced {un_p99:.3} ms"
    );

    // The rollup must explain the gap: the unpaced run spends all its
    // stall time link-limited; pacing moves a chunk of it into
    // sender-side admission wait and shrinks the link-limited share.
    let (un_sender, un_link) = stall_totals(&unpaced);
    let (pa_sender, pa_link) = stall_totals(&paced);
    assert_eq!(un_sender, 0, "no admission wait without a pacer");
    assert!(pa_sender > 0, "paced run should record admission wait");
    assert!(
        pa_link < un_link,
        "pacing should shrink link-limited time: paced {pa_link} ns vs unpaced {un_link} ns"
    );
    assert!(
        paced
            .pacing
            .expect("paced run reports stats")
            .deferred_sends
            > 0,
        "overload must actually exercise the admission queue"
    );
}
