//! Pins the reliability sweep's headline result (the SDR-RDMA story):
//! on the geo 2-site cluster with a 50 ms WAN, erasure parity holds
//! p99 delivery latency below selective-ack retransmission at 1%
//! per-WAN-link loss — the NACK policy pays a WAN round trip per lost
//! block, the coded policy repairs from redundancy already on the wire.
//! Also pins the no-hang acceptance: at every swept loss rate, every
//! run either completes at all survivors or escalates; nothing stalls.

use rdmc_bench::experiments::reliability_sweep;

#[test]
fn erasure_beats_selective_ack_at_one_percent_wan_loss() {
    let report = reliability_sweep(true);
    let cell = |policy: &str, pct: f64| {
        report
            .cells
            .iter()
            .find(|c| c.policy == policy && (c.loss_pct - pct).abs() < 1e-9)
            .unwrap_or_else(|| panic!("missing cell {policy}@{pct}%"))
    };

    // The headline: at 1% WAN loss, coded repair beats per-loss RTT.
    let sack = cell("selective-ack", 1.0);
    let ec = cell("erasure-2+1", 1.0);
    assert!(
        ec.p99_ms < sack.p99_ms,
        "erasure p99 {:.1}ms must beat selective-ack p99 {:.1}ms at 1% loss",
        ec.p99_ms,
        sack.p99_ms
    );
    // And the coded path genuinely repaired from parity, not NACKs.
    assert!(ec.parity_repairs > 0, "no parity reconstructions at 1%");
    assert!(sack.retransmissions > 0, "no retransmissions at 1%");

    // No-hang acceptance across the whole grid: every run completed at
    // all survivors or visibly escalated (reliability_sweep returning
    // at all already proves no run hung).
    for c in &report.cells {
        assert!(
            c.completed == c.messages || c.escalations > 0,
            "{}@{}%: {}/{} completed with no escalation",
            c.policy,
            c.loss_pct,
            c.completed,
            c.messages
        );
        // The self-repairing policies never give up below 5% loss.
        if c.policy != "wedge-resume" && c.loss_pct < 5.0 {
            assert_eq!(
                c.completed, c.messages,
                "{}@{}%: incomplete runs",
                c.policy, c.loss_pct
            );
            assert_eq!(
                c.escalations, 0,
                "{}@{}%: unexpected escalation",
                c.policy, c.loss_pct
            );
        }
    }
}
