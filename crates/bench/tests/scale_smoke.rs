//! Smoke regression pinning the datacenter-scale configuration: the
//! 1000-node, 100-shard `ShardedWorkload` on the fat-tree profile must
//! complete cleanly (every message delivered, zero RNR arms), the
//! trace-derived stall attribution must stay airtight (gap <= 1% of
//! end-to-end per group), and the 10k-flow churn microbench must keep
//! the >= 5x ripple link-visit reduction the kernel redesign claims.

use rdmc::Algorithm;
use rdmc_bench::experiments as e;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use simnet::SimTime;
use workloads::ShardedWorkload;

/// The quick-mode scale benchmark is the regression surface: it must
/// run to completion with a clean fabric and hold the kernel's
/// headline reduction.
#[test]
fn quick_scale_benchmark_completes_with_clean_counters() {
    let report = e::scale_benchmark(true);
    let s = &report.sharded;
    assert_eq!(s.nodes, 1000);
    assert_eq!(s.shards, 100);
    assert_eq!(s.rnr_arms, 0, "RNR retry armed during the scale run");
    assert!(s.agg_gbps > 0.0, "no goodput recorded");
    assert!(s.p99_ms >= s.p50_ms);
    assert!(s.reallocs > 0, "kernel did no allocation work");
    let c = &report.churn;
    assert_eq!(c.flows, 10_000);
    assert!(
        c.visit_speedup >= 5.0,
        "ripple link-visit reduction {:.1}x fell below the 5x bar \
         (legacy {:.1}/event vs hierarchy-aware {:.1}/event)",
        c.visit_speedup,
        c.legacy_visits_per_event,
        c.scaled_visits_per_event,
    );
}

/// A bounded traced run of the same configuration: every group's stall
/// attribution must account for its end-to-end latency within 1%.
#[test]
fn scale_run_stall_attribution_is_airtight() {
    const NODES: usize = 1000;
    const SHARDS: usize = 100;
    const MESSAGES: usize = 60;
    let spec = ClusterSpec::datacenter(NODES);
    let workload = ShardedWorkload {
        seed: 0xDC5C,
        nodes: NODES,
        shards: SHARDS,
        replication_factor: 3,
        offered_gbps: 400.0,
        median_bytes: 1.7e6,
        mean_bytes: 2e6,
        min_bytes: 256 << 10,
        max_bytes: 6 << 20,
    };
    let memberships: Vec<Vec<usize>> = (0..SHARDS).map(|s| workload.members(s)).collect();
    let arrivals: Vec<rdmc_sim::OpenLoopArrival> = workload
        .generate(MESSAGES)
        .into_iter()
        .map(|a| rdmc_sim::OpenLoopArrival {
            at_ns: a.at_ns,
            group_index: a.shard,
            size: a.size,
        })
        .collect();
    let mut cluster = ClusterBuilder::new(spec.clone())
        .intern_paths()
        .flight_recorder(trace::Mode::Full)
        .build();
    let recorder = cluster.recorder().clone();
    let groups: Vec<_> = memberships
        .iter()
        .map(|members| {
            cluster.create_group(GroupSpec {
                members: members.clone(),
                algorithm: Algorithm::BinomialPipeline,
                block_size: 1 << 17,
                ready_window: 6,
                max_outstanding_sends: 6,
            })
        })
        .collect();
    for a in &arrivals {
        cluster.schedule_send_at(groups[a.group_index], SimTime::from_nanos(a.at_ns), a.size);
    }
    cluster.run();
    assert_eq!(
        cluster.fabric().stats().rnr_arms,
        0,
        "RNR retry armed during the scale run"
    );
    let results = cluster.message_results();
    assert_eq!(results.len(), MESSAGES);
    for r in &results {
        assert!(
            r.latency().is_some(),
            "message {}/{} never completed",
            r.group,
            r.index
        );
    }
    // Every group that moved a message must have an airtight stall
    // attribution: the five classes sum to its end-to-end within 1%.
    let events = recorder.events();
    let wire = rdmc_sim::wire_model_for(&spec);
    let mut attributed_groups = 0;
    for &g in &groups {
        let Some(b) = trace::stall::attribute(&events, g as u32, &wire) else {
            continue;
        };
        let gap = b.attributed_ns().abs_diff(b.end_to_end_ns);
        assert!(
            gap as f64 <= 0.01 * b.end_to_end_ns as f64,
            "group {g}: attribution gap {gap}ns exceeds 1% of {}ns",
            b.end_to_end_ns
        );
        attributed_groups += 1;
    }
    assert!(
        attributed_groups > 0,
        "no group produced a stall attribution"
    );
}
