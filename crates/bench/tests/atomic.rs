//! Pins the atomic multicast sweep's headline result: at the 8-shard
//! point offered more than a lone sender can serialize, rotating the
//! sender role through the members commits more operations per second
//! than single-sender RDMC under the legacy stability path — the
//! Derecho/Spindle argument for multi-sender groups at the
//! small-message end of the serving story.

use rdmc_bench::experiments::{atomic_sweep, AtomicCell};

fn cell<'a>(cells: &'a [AtomicCell], mode: &str, shards: usize, heavy: bool) -> &'a AtomicCell {
    // Per (mode, shards) the sweep emits the light point first, then the
    // saturated one; 16 shards has a single (heavy) point.
    let mut matching = cells
        .iter()
        .filter(|c| c.mode == mode && c.shards == shards);
    let first = matching.next().expect("sweep covers the point");
    if heavy {
        matching.next().unwrap_or(first)
    } else {
        first
    }
}

#[test]
fn multi_sender_beats_single_sender_committed_ops_at_8_shards() {
    let report = atomic_sweep(true);
    assert_eq!(report.cells.len(), 6, "3 points x 2 modes");
    for c in &report.cells {
        assert!(
            c.committed_ops_per_s > 0.0 && c.p99_ms >= c.p50_ms,
            "{} at {} shards produced a degenerate cell",
            c.mode,
            c.shards
        );
    }

    // The mandated regression point: 8 shards past single-sender
    // saturation. Rotation must win on committed throughput, and the
    // backlog it avoids must show up as a lower commit p99 too.
    let multi = cell(&report.cells, "multi_sender", 8, true);
    let single = cell(&report.cells, "single_sender", 8, true);
    assert!(
        multi.committed_ops_per_s >= single.committed_ops_per_s,
        "multi-sender must commit at least as fast as single-sender at the \
         8-shard point: {:.0}/s vs {:.0}/s",
        multi.committed_ops_per_s,
        single.committed_ops_per_s
    );
    assert!(
        multi.p99_ms <= single.p99_ms,
        "multi-sender p99 commit latency should not exceed single-sender at \
         overload: {:.3} ms vs {:.3} ms",
        multi.p99_ms,
        single.p99_ms
    );
}
