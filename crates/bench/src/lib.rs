//! # rdmc-bench — the paper's evaluation, regenerated
//!
//! One function per table and figure of the RDMC paper's §5 (see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record). The `report` binary prints every experiment; the Criterion
//! benches under `benches/` print each experiment once and then time a
//! representative configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
pub mod table;

pub use experiments::MB;
pub use parallel::par_map;
