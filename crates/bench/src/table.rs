//! Minimal fixed-width table formatting for experiment reports.

/// Builds a text table: header row, then data rows, columns padded to the
/// widest cell.
pub fn render(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Shorthand for building a row of cells. The expansion is a `Vec` by
/// design — `render` takes owned rows — so clippy's slice suggestion is
/// silenced at the expansion site, not crate-wide.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {{
        #[allow(clippy::useless_vec)]
        let cells = vec![$(format!("{}", $cell)),*];
        cells
    }};
}

/// Human-readable byte size (powers of two).
pub fn bytes_label(b: u64) -> String {
    const KB: u64 = 1 << 10;
    const MB: u64 = 1 << 20;
    if b >= MB && b.is_multiple_of(MB) {
        format!("{}MB", b / MB)
    } else if b >= KB && b.is_multiple_of(KB) {
        format!("{}KB", b / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(&row!["n", "bw"], &[row![3, 12.5], row![16, 7.25]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], " n    bw");
        assert_eq!(lines[2], " 3  12.5");
        assert_eq!(lines[3], "16  7.25");
    }

    #[test]
    fn byte_labels() {
        assert_eq!(bytes_label(256 << 20), "256MB");
        assert_eq!(bytes_label(16 << 10), "16KB");
        assert_eq!(bytes_label(1), "1B");
    }
}
