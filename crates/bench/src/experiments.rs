//! One function per table/figure of the paper's evaluation (§5), each
//! returning the reproduced rows as formatted text. The `report` binary
//! prints them all; the Criterion benches print them once and then time a
//! representative configuration.

use baselines::run_mvapich_multicast;
use rdmc::{analysis, Algorithm};
use rdmc_sim::{
    run_concurrent_overlapping, run_offloaded_chain, run_single_multicast, run_traced_multicast,
    ClusterBuilder, ClusterSpec, GroupSpec, RecoveryConfig, TopoSpec, TraceKind,
};
use simnet::{JitterModel, SimDuration};
use verbs::CompletionMode;
use workloads::{stats, CosmosTrace, ShardedWorkload};

use crate::parallel::par_map;
use crate::row;
use crate::table::{bytes_label, render};

/// One mebibyte.
pub const MB: u64 = 1 << 20;

fn pipeline_group_spec(members: Vec<usize>, block_size: u64, algorithm: Algorithm) -> GroupSpec {
    GroupSpec {
        members,
        algorithm,
        block_size,
        ready_window: 3,
        max_outstanding_sends: 3,
    }
}

/// Fig. 4: multicast latency of every algorithm (and the MVAPICH
/// baseline) across group sizes, for 256 MB and 8 MB messages on the
/// Fractus-like cluster.
pub fn fig4_latency(quick: bool) -> String {
    let sizes: &[u64] = if quick {
        &[8 * MB]
    } else {
        &[256 * MB, 8 * MB]
    };
    let groups: Vec<usize> = if quick {
        vec![4, 8, 16]
    } else {
        (2..=16).collect()
    };
    let spec = ClusterSpec::fractus(16);
    let mut out = String::new();
    for &size in sizes {
        let rows = par_map(&groups, |&n| {
            let lat = |alg: Algorithm| {
                run_single_multicast(&spec, n, alg, size, MB)
                    .latency
                    .as_secs_f64()
                    * 1e3
            };
            let seq = lat(Algorithm::Sequential);
            let tree = lat(Algorithm::BinomialTree);
            let chain = lat(Algorithm::Chain);
            let pipe = lat(Algorithm::BinomialPipeline);
            let mpi = run_mvapich_multicast(&spec, n, size, MB)
                .latency
                .as_secs_f64()
                * 1e3;
            row![
                n,
                format!("{seq:.1}"),
                format!("{tree:.1}"),
                format!("{chain:.1}"),
                format!("{pipe:.1}"),
                format!("{mpi:.1}"),
                format!("{:.2}", mpi / pipe)
            ]
        });
        out.push_str(&format!(
            "Fig 4 ({}): multicast latency (ms), Fractus-like 100 Gb/s, 1 MB blocks\n",
            bytes_label(size)
        ));
        out.push_str(&render(
            &row![
                "group",
                "sequential",
                "bin-tree",
                "chain",
                "bin-pipeline",
                "mvapich",
                "mpi/pipe"
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 1: microsecond breakdown of a single 256 MB transfer (1 MB
/// blocks, group of 4) on the Stampede-like cluster, measured at the node
/// farthest from the root.
pub fn table1_breakdown(quick: bool) -> String {
    let size = if quick { 64 * MB } else { 256 * MB };
    let spec = ClusterSpec::stampede(4);
    let mut cluster = ClusterBuilder::new(spec.clone()).tracing().build();
    let group = cluster.create_group(pipeline_group_spec(
        (0..4).collect(),
        MB,
        Algorithm::BinomialPipeline,
    ));
    cluster.submit_send(group, size);
    cluster.run();
    let result = &cluster.message_results()[0];
    let submitted = result.submitted;
    let total = result.latency().expect("transfer completed");

    let first_post = cluster
        .trace(group, 0)
        .iter()
        .find(|r| matches!(r.kind, TraceKind::SendPosted { .. }))
        .expect("root posted")
        .time;
    // The farthest node in a 4-member hypercube is rank 3.
    let far = cluster.trace(group, 3);
    let arrivals: Vec<_> = far
        .iter()
        .filter(|r| matches!(r.kind, TraceKind::BlockArrived { .. }))
        .map(|r| r.time)
        .collect();
    let delivered = far
        .iter()
        .find(|r| r.kind == TraceKind::Delivered)
        .expect("delivered")
        .time;
    let first_arrival = arrivals[0];
    // Attribution: each of the k-1 post-first blocks costs one block-wire
    // time on the receive path; whatever else the receive window took is
    // waiting (scheduling slack, contention, relay drain). This mirrors
    // the paper's accounting, where ~99% of the window lands in the
    // block-transfer states.
    let wire_block = SimDuration::from_secs_f64(MB as f64 * 8.0 / 40e9);
    let receive_window = delivered.since(first_arrival);
    let transfers = SimDuration::from_secs_f64(
        wire_block.as_secs_f64() * (arrivals.len().saturating_sub(1)) as f64,
    );
    let waiting = receive_window - transfers; // saturating at zero
    let remote_setup = first_post.since(submitted);
    let remote_transfers = first_arrival.since(first_post);
    let local_setup = spec.profile.malloc_latency;
    let copy = spec.profile.memcpy_time(MB);

    let us = |d: SimDuration| format!("{:.0}", d.as_micros_f64());
    let mut out = format!(
        "Table 1: breakdown of one {} transfer (1 MB blocks, group of 4, Stampede-like)\n",
        bytes_label(size)
    );
    out.push_str(&render(
        &row!["phase", "time (us)"],
        &[
            row!["Remote Setup", us(remote_setup)],
            row!["Remote Block Transfers", us(remote_transfers)],
            row!["Local Setup", us(local_setup)],
            row!["Block Transfers", us(transfers)],
            row!["Waiting", us(waiting)],
            row!["Copy Time", us(copy)],
            row!["Total", us(total)],
        ],
    ));
    let hw = transfers.as_secs_f64() + remote_transfers.as_secs_f64();
    out.push_str(&format!(
        "network-busy share of total: {:.1}%\n\n",
        100.0 * hw / total.as_secs_f64()
    ));
    out
}

/// Fig. 5: per-step transfer/wait timeline at the root and the first
/// relayer, with an injected ~100 us OS preemption at the relayer.
pub fn fig5_step_timeline(quick: bool) -> String {
    let size = if quick { 32 * MB } else { 256 * MB };
    let spec = ClusterSpec::stampede(4);
    // A rare, fixed-length preemption on the relayer (the paper observed
    // one such stall near the end of its instrumented transfer).
    let mut cluster = ClusterBuilder::new(spec.clone())
        .tracing()
        .jitter(
            1,
            JitterModel::new(
                11,
                0.005,
                SimDuration::from_micros(100),
                SimDuration::from_micros(100),
            ),
        )
        .build();
    let group = cluster.create_group(pipeline_group_spec(
        (0..4).collect(),
        MB,
        Algorithm::BinomialPipeline,
    ));
    cluster.submit_send(group, size);
    cluster.run();

    let mut out = format!(
        "Fig 5: per-step send/wait at sender (rank 0) and relayer (rank 1), {} transfer\n",
        bytes_label(size)
    );
    for rank in [0u32, 1] {
        let trace = cluster.trace(group, rank);
        let mut posts = Vec::new();
        let mut dones = Vec::new();
        for r in trace {
            match r.kind {
                TraceKind::SendPosted { .. } => posts.push(r.time),
                TraceKind::SendFinished { .. } => dones.push(r.time),
                _ => {}
            }
        }
        let steps = posts.len().min(dones.len());
        let mut sends = Vec::new();
        let mut waits = Vec::new();
        for i in 0..steps {
            sends.push(dones[i].since(posts[i]).as_micros_f64());
            if i + 1 < steps {
                // With pipelined sends the next post may precede this
                // completion; that counts as zero wait.
                waits.push(posts[i + 1].saturating_since(dones[i]).as_micros_f64());
            }
        }
        let max_wait = waits.iter().copied().fold(0.0, f64::max);
        let max_at = waits.iter().position(|&w| w == max_wait).unwrap_or(0);
        out.push_str(&render(
            &row![
                "rank",
                "steps",
                "mean send us",
                "mean wait us",
                "max wait us",
                "at step"
            ],
            &[row![
                rank,
                steps,
                format!("{:.1}", stats::mean(&sends)),
                format!(
                    "{:.1}",
                    if waits.is_empty() {
                        0.0
                    } else {
                        stats::mean(&waits)
                    }
                ),
                format!("{max_wait:.1}"),
                max_at
            ]],
        ));
    }
    out.push_str(
        "(the relayer's max wait shows the injected ~100us preemption stalling its pipeline)\n\n",
    );
    out
}

/// Fig. 6: bandwidth across block sizes for several message sizes,
/// groups of 4 on Fractus.
pub fn fig6_block_size(quick: bool) -> String {
    let blocks: &[u64] = if quick {
        &[64 << 10, 1 << 20, 8 << 20]
    } else {
        &[16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]
    };
    let messages: &[u64] = if quick {
        &[8 * MB]
    } else {
        &[16 << 10, MB, 8 * MB, 128 * MB]
    };
    let spec = ClusterSpec::fractus(4);
    let cases: Vec<(u64, u64)> = blocks
        .iter()
        .flat_map(|&block| messages.iter().map(move |&msg| (block, msg)))
        .collect();
    let cells = par_map(&cases, |&(block, msg)| {
        if block > msg {
            return "-".to_owned();
        }
        let bw =
            run_single_multicast(&spec, 4, Algorithm::BinomialPipeline, msg, block).bandwidth_gbps;
        format!("{bw:.1}")
    });
    let rows: Vec<Vec<String>> = blocks
        .iter()
        .zip(cells.chunks(messages.len()))
        .map(|(&block, chunk)| {
            let mut cells = vec![bytes_label(block)];
            cells.extend(chunk.iter().cloned());
            cells
        })
        .collect();
    let mut header = vec!["block \\ msg".to_owned()];
    header.extend(messages.iter().map(|&m| bytes_label(m)));
    format!(
        "Fig 6: binomial pipeline bandwidth (Gb/s) vs block size, group of 4, Fractus-like\n{}\n",
        render(&header, &rows)
    )
}

/// Fig. 7: sustained 1-byte messages per second vs group size.
pub fn fig7_one_byte(quick: bool) -> String {
    let groups: Vec<usize> = if quick {
        vec![4, 16]
    } else {
        vec![2, 3, 4, 6, 8, 12, 16]
    };
    let count = if quick { 100 } else { 400 };
    let spec = ClusterSpec::fractus(16);
    let rows = par_map(&groups, |&n| {
        let mut cluster = ClusterBuilder::new(spec.clone()).build();
        let group = cluster.create_group(pipeline_group_spec(
            (0..n).collect(),
            MB,
            Algorithm::BinomialPipeline,
        ));
        for _ in 0..count {
            cluster.submit_send(group, 1);
        }
        cluster.run();
        let end = cluster
            .message_results()
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
            .expect("deliveries");
        let rate = count as f64 / end.as_secs_f64();
        row![n, format!("{rate:.0}")]
    });
    format!(
        "Fig 7: 1-byte messages/second (binomial pipeline, Fractus-like)\n{}\n",
        render(&row!["group", "msgs/sec"], &rows)
    )
}

/// Fig. 8: time to replicate 256 MB to many nodes on the Sierra-like
/// cluster — binomial pipeline vs sequential send.
pub fn fig8_scalability(quick: bool) -> String {
    let sizes: Vec<usize> = if quick {
        vec![4, 16, 64]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128, 256, 512]
    };
    let msg = 256 * MB;
    let block = 4 * MB;
    let spec = ClusterSpec::sierra(512);
    let cases: Vec<(usize, Algorithm)> = sizes
        .iter()
        .flat_map(|&n| [(n, Algorithm::BinomialPipeline), (n, Algorithm::Sequential)])
        .collect();
    let lats = par_map(&cases, |(n, alg)| {
        run_single_multicast(&spec, *n, alg.clone(), msg, block)
            .latency
            .as_secs_f64()
    });
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .zip(lats.chunks(2))
        .map(|(&n, pair)| {
            let (pipe, seq) = (pair[0], pair[1]);
            row![
                n,
                format!("{:.3}", pipe),
                format!("{:.3}", seq),
                format!("{:.1}x", seq / pipe)
            ]
        })
        .collect();
    format!(
        "Fig 8: total time (s) to replicate 256 MB on Sierra-like (40 Gb/s), 4 MB blocks\n{}\n",
        render(
            &row!["copies", "bin-pipeline", "sequential", "speedup"],
            &rows
        )
    )
}

/// Fig. 9: the Cosmos replication-layer replay — latency distribution per
/// algorithm and aggregate replication throughput.
pub fn fig9_cosmos(quick: bool) -> String {
    let writes = if quick { 60 } else { 300 };
    let trace = CosmosTrace {
        max_bytes: 128 * MB, // bound a single run's tail for simulation time
        ..CosmosTrace::default()
    };
    let sample = trace.generate(writes);
    let total_bytes: f64 = sample.iter().map(|w| w.size as f64).sum();
    let mut out = format!(
        "Fig 9: Cosmos trace replay ({} writes, median {} mean {}), 1 generator + 15 replicas\n",
        writes,
        bytes_label(12 * MB),
        bytes_label(29 * MB),
    );
    let algorithms = [
        Algorithm::Sequential,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ];
    let rows = par_map(&algorithms, |alg| {
        let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(16)).build();
        // Pre-create one group per distinct target set used by the sample
        // (the paper pre-creates all 455).
        let mut group_of: std::collections::BTreeMap<Vec<usize>, rdmc_sim::GroupId> =
            std::collections::BTreeMap::new();
        // Fully backlogged injection (the replication layer always has
        // work): every write queued at t=0, groups re-used as in the
        // paper's pre-created 455.
        for w in &sample {
            let mut members = vec![0usize];
            members.extend(w.targets.iter().map(|&t| t + 1));
            let key = members.clone();
            let gid = *group_of.entry(key).or_insert_with(|| {
                cluster.create_group(pipeline_group_spec(members, MB, alg.clone()))
            });
            cluster.submit_send(gid, w.size);
        }
        cluster.run();
        let results = cluster.message_results();
        let latencies: Vec<f64> = results
            .iter()
            .map(|r| r.latency().expect("write completed").as_secs_f64() * 1e3)
            .collect();
        let end = results
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
            .expect("deliveries");
        let aggregate = total_bytes * 8.0 / end.as_secs_f64() / 1e9;
        row![
            alg,
            format!("{:.1}", stats::percentile(&latencies, 25.0)),
            format!("{:.1}", stats::percentile(&latencies, 50.0)),
            format!("{:.1}", stats::percentile(&latencies, 75.0)),
            format!("{:.1}", stats::percentile(&latencies, 95.0)),
            format!("{:.1}", aggregate)
        ]
    });
    out.push_str(&render(
        &row![
            "algorithm",
            "p25 ms",
            "p50 ms",
            "p75 ms",
            "p95 ms",
            "object Gb/s"
        ],
        &rows,
    ));
    out.push('\n');
    out
}

/// Fig. 10: aggregate bandwidth of fully-overlapping concurrent groups,
/// on the full-bisection Fractus-like fabric and the oversubscribed
/// Apt-like fabric.
pub fn fig10_overlap(quick: bool) -> String {
    let mut out = String::new();
    // (a) Fractus.
    let fractus = ClusterSpec::fractus(16);
    let groups: Vec<usize> = if quick {
        vec![8, 16]
    } else {
        vec![4, 8, 12, 16]
    };
    let sizes: &[u64] = if quick {
        &[MB]
    } else {
        &[100 * MB, MB, 10 << 10]
    };
    out.push_str("Fig 10a: aggregate bandwidth (Gb/s) of overlapping groups, Fractus-like\n");
    out.push_str(&overlap_table(&fractus, &groups, sizes, 2));
    // (b) Apt: oversubscribed TOR.
    if !quick {
        let apt = ClusterSpec::apt(7, 8); // 56 nodes
        let groups = vec![5usize, 15, 25, 40, 55];
        out.push_str("\nFig 10b: the same on the Apt-like oversubscribed TOR (56 nodes)\n");
        out.push_str(&overlap_table(&apt, &groups, &[32 * MB, MB], 1));
    }
    out.push('\n');
    out
}

fn overlap_table(
    spec: &ClusterSpec,
    groups: &[usize],
    sizes: &[u64],
    msgs_per_sender: usize,
) -> String {
    let mut cases = Vec::new();
    for &n in groups {
        for &size in sizes {
            for senders in [n, (n / 2).max(1), 1] {
                cases.push((n, size, senders));
            }
        }
    }
    let bws = par_map(&cases, |&(n, size, senders)| {
        run_concurrent_overlapping(
            spec,
            n,
            senders,
            Algorithm::BinomialPipeline,
            size,
            msgs_per_sender,
            MB.min(size.max(1)),
        )
    });
    let rows: Vec<Vec<String>> = cases
        .chunks(3)
        .zip(bws.chunks(3))
        .map(|(case, bw)| {
            let (n, size, _) = case[0];
            row![
                n,
                bytes_label(size),
                format!("{:.1}", bw[0]),
                format!("{:.1}", bw[1]),
                format!("{:.1}", bw[2])
            ]
        })
        .collect();
    render(
        &row!["group", "msg size", "all send", "half send", "one send"],
        &rows,
    )
}

/// Fig. 11: the hybrid polling/interrupt completion scheme vs pure
/// interrupts — bandwidth and CPU load.
pub fn fig11_interrupts(quick: bool) -> String {
    let groups: Vec<usize> = if quick {
        vec![4, 16]
    } else {
        vec![3, 4, 6, 8, 12, 16]
    };
    let sizes: &[u64] = if quick {
        &[MB]
    } else {
        &[100 * MB, MB, 10 << 10]
    };
    let mut cases = Vec::new();
    for &size in sizes {
        for &n in &groups {
            for mode in [CompletionMode::Hybrid, CompletionMode::Interrupt] {
                cases.push((size, n, mode));
            }
        }
    }
    let measured = par_map(&cases, |&(size, n, mode)| {
        let mut spec = ClusterSpec::fractus(16);
        spec.completion_mode = mode;
        let mut cluster = ClusterBuilder::new(spec).build();
        let group = cluster.create_group(pipeline_group_spec(
            (0..n).collect(),
            MB.min(size.max(1)),
            Algorithm::BinomialPipeline,
        ));
        // A short stream so CPU loads are steady-state.
        let count = if size >= MB { 3 } else { 20 };
        for _ in 0..count {
            cluster.submit_send(group, size);
        }
        cluster.run();
        let results = cluster.message_results();
        let end = results
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
            .expect("deliveries");
        let elapsed = end.as_secs_f64();
        let bw = size as f64 * count as f64 * 8.0 / elapsed / 1e9;
        let wall = SimDuration::from_secs_f64(elapsed);
        let load = cluster.cpu_report(1).load(wall);
        (format!("{bw:.1}"), format!("{:.0}%", load * 100.0))
    });
    let rows: Vec<Vec<String>> = cases
        .chunks(2)
        .zip(measured.chunks(2))
        .map(|(case, m)| {
            let (size, n, _) = case[0];
            let mut cells = vec![bytes_label(size), n.to_string()];
            for (bw, load) in m {
                cells.push(bw.clone());
                cells.push(load.clone());
            }
            cells
        })
        .collect();
    format!(
        "Fig 11: hybrid vs pure-interrupt completions (binomial pipeline, Fractus-like)\n{}\n",
        render(
            &row![
                "msg",
                "group",
                "hybrid Gb/s",
                "hybrid CPU",
                "intr Gb/s",
                "intr CPU"
            ],
            &rows
        )
    )
}

/// Fig. 12: CORE-Direct offloaded chain send vs the software chain.
pub fn fig12_core_direct(quick: bool) -> String {
    let groups: Vec<usize> = if quick {
        vec![4, 8]
    } else {
        vec![3, 4, 5, 6, 7, 8]
    };
    let size = 100 * MB;
    let mut cases = Vec::new();
    for &n in &groups {
        for mode in [CompletionMode::Polling, CompletionMode::Interrupt] {
            cases.push((n, mode));
        }
    }
    let rows = par_map(&cases, |&(n, mode)| {
        let mut spec = ClusterSpec::fractus(8);
        spec.completion_mode = mode;
        let members: Vec<usize> = (0..n).collect();
        let off_t = run_offloaded_chain(spec.build(), &members, size, MB);
        let off_bw = size as f64 * 8.0 / off_t.as_secs_f64() / 1e9;
        let sw = run_single_multicast(&spec, n, Algorithm::Chain, size, MB);
        let label = match mode {
            CompletionMode::Polling => "polling",
            CompletionMode::Interrupt => "interrupt",
            CompletionMode::Hybrid => "hybrid",
        };
        row![
            n,
            label,
            format!("{off_bw:.1}"),
            format!("{:.1}", sw.bandwidth_gbps),
            format!("{:.2}x", off_bw / sw.bandwidth_gbps)
        ]
    });
    format!(
        "Fig 12: 100 MB chain send, CORE-Direct offload vs software relays\n{}\n",
        render(
            &row![
                "group",
                "completions",
                "offload Gb/s",
                "software Gb/s",
                "speedup"
            ],
            &rows
        )
    )
}

/// §4.5 robustness: slack constant, slow-link bound, jitter absorption.
pub fn robustness_analysis(quick: bool) -> String {
    let mut out = String::from("Robustness analysis (paper section 4.5)\n\n");
    // Slack: predicted vs measured on real schedules.
    let mut rows = Vec::new();
    for n in [4u32, 8, 16, 32, 64] {
        let g = rdmc::schedule::GlobalSchedule::build(&Algorithm::BinomialPipeline, n, 24);
        let measured: Vec<f64> = analysis::steady_steps(n, 24)
            .filter_map(|j| analysis::empirical_avg_slack(&g, j))
            .collect();
        rows.push(row![
            n,
            format!("{:.4}", analysis::predicted_avg_slack(n)),
            format!("{:.4}", stats::mean(&measured))
        ]);
    }
    out.push_str("Average steady-state slack: 2(1-(l-1)/(n-2))\n");
    out.push_str(&render(&row!["n", "predicted", "measured"], &rows));
    // Slow link: formula vs simulation.
    let msg = if quick { 32 * MB } else { 128 * MB };
    let fracs = [0.25f64, 0.5, 0.75];
    let rows = par_map(&fracs, |&slow_frac| {
        let mk = |gbps: Vec<f64>| ClusterSpec {
            topology: TopoSpec::FlatPerNode {
                gbps,
                latency: SimDuration::from_micros(2),
            },
            ..ClusterSpec::fractus(0)
        };
        let base =
            run_single_multicast(&mk(vec![100.0; 8]), 8, Algorithm::BinomialPipeline, msg, MB);
        let mut slowed = vec![100.0; 8];
        slowed[5] = 100.0 * slow_frac;
        let slow = run_single_multicast(&mk(slowed), 8, Algorithm::BinomialPipeline, msg, MB);
        let measured = slow.bandwidth_gbps / base.bandwidth_gbps;
        let bound = analysis::slow_link_bandwidth_fraction(3, 1.0, slow_frac);
        row![
            format!("{:.0}%", slow_frac * 100.0),
            format!("{bound:.3}"),
            format!("{measured:.3}")
        ]
    });
    out.push_str("\nOne slow NIC (n=8, l=3): retained bandwidth fraction\n");
    out.push_str(&render(
        &row!["slow link speed", "bound l*T'/(T+(l-1)T')", "measured"],
        &rows,
    ));
    out.push_str(&format!(
        "\npaper's worked example: T'=T/2, n=64 -> bound {:.1}%\n",
        100.0 * analysis::slow_link_bandwidth_fraction(6, 1.0, 0.5)
    ));
    // Jitter absorption.
    let spec = ClusterSpec::fractus(8);
    let clean = run_single_multicast(&spec, 8, Algorithm::BinomialPipeline, msg, MB);
    let mut builder = ClusterBuilder::new(spec.clone());
    for node in 0..8 {
        builder = builder.jitter(
            node,
            JitterModel::new(
                node as u64 + 77,
                0.02,
                SimDuration::from_micros(50),
                SimDuration::from_micros(150),
            ),
        );
    }
    let mut cluster = builder.build();
    let group = cluster.create_group(pipeline_group_spec(
        (0..8).collect(),
        MB,
        Algorithm::BinomialPipeline,
    ));
    cluster.submit_send(group, msg);
    cluster.run();
    let jittered = cluster.message_results()[0].latency().expect("completed");
    out.push_str(&format!(
        "\nScheduling jitter (2% of actions delayed 50-150us on every node): slowdown {:.2}x\n\n",
        jittered.as_secs_f64() / clean.latency.as_secs_f64()
    ));
    out
}

/// Epoch-based failure recovery: detection latency, reconfiguration
/// time, and resumed-transfer completion against the failure-free
/// baseline. A mid-group member crashes at one third of the failure-free
/// protocol steps; the membership layer reconfigures the wedged group
/// and the resume planner retransmits only the missing blocks.
pub fn recovery_failover(quick: bool) -> String {
    let msg = if quick { 16 * MB } else { 64 * MB };
    let groups: Vec<usize> = if quick { vec![4, 8] } else { vec![4, 8, 16] };
    let mut out = String::from(
        "Epoch-based failure recovery (the paper's §2.4 membership assumption made concrete)\n\n",
    );
    let rows = par_map(&groups, |&n| {
        let spec = ClusterSpec::fractus(n);
        let run = |crash: Option<(usize, u64)>| {
            let mut cluster = ClusterBuilder::new(spec.clone())
                .recovery(RecoveryConfig::default())
                .build();
            let group = cluster.create_group(pipeline_group_spec(
                (0..n).collect(),
                MB,
                Algorithm::BinomialPipeline,
            ));
            if let Some((victim, step)) = crash {
                cluster.crash_after_events(victim, step);
            }
            cluster.submit_send(group, msg);
            cluster.run();
            cluster
        };
        let baseline = run(None);
        let base_lat = baseline.message_results()[0]
            .latency()
            .expect("failure-free run completes");
        let steps = baseline.events_fed();
        let victim = n / 2;
        let cluster = run(Some((victim, steps / 3)));
        let stats = cluster.recovery_stats();
        let det = &stats.detections[0];
        let rc = &stats.reconfigurations[0];
        let detect = det
            .suspected_at
            .since(cluster.crash_time(victim).expect("victim crashed"));
        let reconf = rc.installed_at.since(rc.first_suspected_at);
        let msg0 = &cluster.message_results()[0];
        let completed = cluster
            .surviving_ranks(0)
            .iter()
            .filter_map(|&o| msg0.delivered_at[o as usize])
            .max()
            .expect("survivors completed the resumed transfer");
        let total = completed.since(msg0.submitted);
        let k = msg.div_ceil(MB) as usize;
        row![
            n,
            format!("{:.2}", detect.as_secs_f64() * 1e3),
            format!("{:.2}", reconf.as_secs_f64() * 1e3),
            format!("{}/{}", rc.resumed_blocks, k * (n - 2)),
            format!("{:.1}", base_lat.as_secs_f64() * 1e3),
            format!("{:.1}", total.as_secs_f64() * 1e3),
            format!("{:.2}x", total.as_secs_f64() / base_lat.as_secs_f64())
        ]
    });
    out.push_str(&render(
        &row![
            "n",
            "detect (ms)",
            "reconfig (ms)",
            "resent/full blocks",
            "no-fault (ms)",
            "crash+resume (ms)",
            "slowdown"
        ],
        &rows,
    ));
    out.push_str(
        "\ncrash lands at 1/3 of the failure-free protocol steps; detect = crash to first\n\
         suspicion; reconfig = first suspicion to new-epoch install; \"resent\" counts the\n\
         resume schedule's transfers against a full re-multicast to every non-root survivor\n",
    );
    out
}

/// §4.6: the SST small-message protocol vs RDMC across message and group
/// sizes — reproducing the ~5x small-message advantage and the crossover.
pub fn sst_small_messages(quick: bool) -> String {
    let sizes: &[u64] = if quick {
        &[1 << 10, 100 << 10]
    } else {
        &[100, 1 << 10, 10 << 10, 100 << 10]
    };
    let groups: Vec<usize> = if quick {
        vec![4, 16]
    } else {
        vec![4, 8, 16, 32]
    };
    let count = if quick { 150 } else { 300 };
    let mut cases = Vec::new();
    for &size in sizes {
        for &n in &groups {
            cases.push((size, n));
        }
    }
    let rows = par_map(&cases, |&(size, n)| {
        let sst_rate = sst::small_message_rate(n, size, count, 16);
        // RDMC: the same stream through the binomial pipeline.
        let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(32)).build();
        let group = cluster.create_group(pipeline_group_spec(
            (0..n).collect(),
            MB,
            Algorithm::BinomialPipeline,
        ));
        for _ in 0..count {
            cluster.submit_send(group, size);
        }
        cluster.run();
        let end = cluster
            .message_results()
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
            .expect("deliveries");
        let rdmc_rate = count as f64 / end.as_secs_f64();
        row![
            bytes_label(size),
            n,
            format!("{sst_rate:.0}"),
            format!("{rdmc_rate:.0}"),
            format!("{:.2}x", sst_rate / rdmc_rate)
        ]
    });
    format!(
        "Derecho SST small-message protocol vs RDMC (messages/second)\n{}\n",
        render(
            &row!["msg", "group", "SST msg/s", "RDMC msg/s", "SST/RDMC"],
            &rows
        )
    )
}

/// Simulation-kernel throughput: how fast the simulator itself runs on
/// representative heavy configurations — events per wall-clock second,
/// rate-reallocation work, and the share of wall time spent re-running
/// water-filling. Not a paper figure; this meters the reproduction's own
/// engine (process-wide counters, see [`verbs::perf`]).
pub fn kernel_throughput(quick: bool) -> String {
    let mut rows = Vec::new();
    let mut scenario = |name: &str, run: &dyn Fn()| {
        let base = verbs::perf::snapshot();
        let t0 = std::time::Instant::now();
        run();
        let wall = t0.elapsed().as_secs_f64();
        let d = verbs::perf::snapshot().delta_since(&base);
        let per_realloc = if d.realloc_count == 0 {
            0.0
        } else {
            d.flows_visited as f64 / d.realloc_count as f64
        };
        rows.push(row![
            name,
            d.events,
            format!("{:.0}k", d.events as f64 / wall / 1e3),
            d.realloc_count,
            format!("{per_realloc:.1}"),
            format!("{:.1}%", 100.0 * d.realloc_nanos as f64 / (wall * 1e9)),
            format!("{wall:.2}s")
        ]);
    };

    let msg = if quick { 64 * MB } else { 256 * MB };
    let sierra128 = ClusterSpec::sierra(128);
    scenario("multicast n=128 (Sierra)", &|| {
        run_single_multicast(&sierra128, 128, Algorithm::BinomialPipeline, msg, 4 * MB);
    });
    if !quick {
        let sierra512 = ClusterSpec::sierra(512);
        scenario("multicast n=512 (Sierra)", &|| {
            run_single_multicast(&sierra512, 512, Algorithm::BinomialPipeline, msg, 4 * MB);
        });
    }
    let fractus = ClusterSpec::fractus(16);
    let overlap_msg = if quick { MB } else { 4 * MB };
    scenario("overlap 16 senders x 16 (Fractus)", &|| {
        run_concurrent_overlapping(
            &fractus,
            16,
            16,
            Algorithm::BinomialPipeline,
            overlap_msg,
            2,
            MB,
        );
    });
    format!(
        "Simulation-kernel throughput (single-threaded, per scenario)\n{}\n",
        render(
            &row![
                "scenario",
                "events",
                "events/s",
                "reallocs",
                "flows/realloc",
                "realloc time",
                "wall"
            ],
            &rows
        )
    )
}

/// Static-analysis sweep timing: runs the `analyzer` crate's full grid
/// (schedule model checker, posting-order deadlock lint, engine
/// reachability) and reports what was proven and how long the proof
/// took. Not a paper figure — it records the cost of the repository's
/// own verification layer next to the simulation numbers it guards.
pub fn analyzer_sweep(quick: bool) -> String {
    let config = if quick {
        analyzer::SweepConfig::quick()
    } else {
        analyzer::SweepConfig::default()
    };
    let t0 = std::time::Instant::now();
    let report = analyzer::sweep(&config);
    let wall = t0.elapsed().as_secs_f64();
    let rows = vec![row![
        format!("grid n<={} (quick={quick})", config.max_n),
        report.schedules_checked,
        report.lints_run,
        report.reach_runs,
        report.reach_states,
        if report.is_clean() {
            "clean"
        } else {
            "VIOLATIONS"
        },
        format!("{wall:.2}s")
    ]];
    format!(
        "Static-analysis sweep (schedule model checker + deadlock lint + reachability)\n{}\n",
        render(
            &row![
                "sweep",
                "schedules",
                "lints",
                "reach runs",
                "reach states",
                "verdict",
                "wall"
            ],
            &rows
        )
    )
}

/// Execution-explorer throughput: enumerates the CI-tier interleaving
/// corner (exhaustive and DPOR) plus a seeded random walk, and reports
/// executions, resolved choice points, and explored states per second —
/// the cost of the dynamic verification layer, recorded next to the
/// static sweep it complements.
pub fn explore_throughput(quick: bool) -> String {
    use analyzer::{explore_executions, ExploreConfig, ExploreScenario};

    let mut rows = Vec::new();
    let mut cases: Vec<(&str, ExploreConfig)> = Vec::new();
    let mut atomic3 = ExploreScenario::small(Algorithm::BinomialPipeline, 3, 2);
    atomic3.atomic = true;
    cases.push((
        "exhaustive n=3 k=2 atomic",
        ExploreConfig::exhaustive(atomic3),
    ));
    let mut plain4 = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2);
    plain4.atomic = false;
    cases.push((
        "exhaustive n=4 k=2",
        ExploreConfig::exhaustive(plain4.clone()),
    ));
    cases.push(("dpor n=4 k=2", ExploreConfig::dpor(plain4.clone())));
    if !quick {
        let mut plain5 = ExploreScenario::small(Algorithm::BinomialPipeline, 5, 2);
        plain5.atomic = false;
        cases.push(("dpor n=5 k=2", ExploreConfig::dpor(plain5)));
        cases.push((
            "random n=4 k=2 x500",
            ExploreConfig::random(plain4, 0xbe11, 500),
        ));
    }

    for (name, config) in cases {
        let t0 = std::time::Instant::now();
        let report = explore_executions(&config);
        let wall = t0.elapsed().as_secs_f64();
        rows.push(row![
            name,
            report.executions,
            report.points_resolved,
            report.max_depth,
            format!("{:.0}", report.executions as f64 / wall.max(1e-9)),
            format!("{:.0}", report.points_resolved as f64 / wall.max(1e-9)),
            if report.is_clean() && !report.truncated {
                "clean"
            } else {
                "VIOLATIONS"
            },
            format!("{wall:.2}s")
        ]);
    }
    format!(
        "Execution explorer (stateless model checking of interleavings)\n{}\n",
        render(
            &row![
                "scenario",
                "executions",
                "points",
                "depth",
                "exec/s",
                "points/s",
                "verdict",
                "wall"
            ],
            &rows
        )
    )
}

/// Machine-readable explorer-throughput record for the JSON summary:
/// executions, resolved choice points (explored states), and states per
/// second over the CI-tier exhaustive corner plus its DPOR reduction.
pub struct ExploreBench {
    /// Executions enumerated by the exhaustive pass (n=4, k=2).
    pub exhaustive_executions: u64,
    /// Executions the DPOR pass needed for the same scenario.
    pub dpor_executions: u64,
    /// Total choice points resolved across both passes.
    pub points: u64,
    /// Wall time of both passes combined, seconds.
    pub wall_s: f64,
    /// Explored states (resolved choice points) per second.
    pub states_per_sec: f64,
}

impl ExploreBench {
    /// Renders the record as a JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"exhaustive_executions\": {}, \"dpor_executions\": {}, \
             \"points\": {}, \"wall_s\": {:.3}, \"states_per_sec\": {:.0}}}",
            self.exhaustive_executions,
            self.dpor_executions,
            self.points,
            self.wall_s,
            self.states_per_sec,
        )
    }
}

/// Times the CI-tier exhaustive enumeration (n=4, k=2, non-atomic) and
/// its DPOR counterpart for the JSON summary. Small enough to ride
/// along on every report run.
pub fn explore_bench_probe(_quick: bool) -> ExploreBench {
    use analyzer::{explore_executions, ExploreConfig, ExploreScenario};

    let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2);
    scenario.atomic = false;
    let t0 = std::time::Instant::now();
    let full = explore_executions(&ExploreConfig::exhaustive(scenario.clone()));
    let dpor = explore_executions(&ExploreConfig::dpor(scenario));
    let wall_s = t0.elapsed().as_secs_f64();
    let points = full.points_resolved + dpor.points_resolved;
    ExploreBench {
        exhaustive_executions: full.executions,
        dpor_executions: dpor.executions,
        points,
        wall_s,
        states_per_sec: points as f64 / wall_s.max(1e-9),
    }
}

/// Observability: stall attribution over the Fig. 4 binomial-pipeline
/// sweep. For every configuration the five attribution classes —
/// ideal transfer, link-limited, sender-limited, receiver-limited, and
/// schedule idle — must sum to the end-to-end latency within 1% (they
/// sum exactly by construction; the check guards the instrumentation).
pub fn trace_observability(quick: bool) -> String {
    let sizes: &[u64] = if quick {
        &[8 * MB]
    } else {
        &[256 * MB, 8 * MB]
    };
    let groups: Vec<usize> = if quick {
        vec![4, 8, 16]
    } else {
        (2..=16).collect()
    };
    let spec = ClusterSpec::fractus(16);
    let mut out = String::new();
    for &size in sizes {
        let rows = par_map(&groups, |&n| {
            let (outcome, events, wire) =
                run_traced_multicast(&spec, n, Algorithm::BinomialPipeline, size, MB);
            let b = trace::stall::attribute(&events, 0, &wire)
                .expect("traced run has a complete group 0 recording");
            let e2e = b.end_to_end_ns;
            assert_eq!(
                e2e,
                (outcome.latency.as_secs_f64() * 1e9).round() as u64,
                "trace-derived end-to-end disagrees with the engine (n={n})"
            );
            let gap = b.attributed_ns().abs_diff(e2e);
            assert!(
                gap as f64 <= 0.01 * e2e as f64,
                "attribution gap {gap}ns exceeds 1% of {e2e}ns (n={n})"
            );
            let pct = |x: u64| format!("{:.1}%", 100.0 * x as f64 / e2e as f64);
            row![
                n,
                format!("{:.2}", e2e as f64 / 1e6),
                pct(b.transfer_ns),
                pct(b.link_limited_ns),
                pct(b.sender_limited_ns),
                pct(b.receiver_limited_ns),
                pct(b.schedule_idle_ns),
                events.len()
            ]
        });
        out.push_str(&format!(
            "Stall attribution ({}): binomial pipeline, Fractus-like 100 Gb/s, 1 MB blocks\n\
             (classes sum to end-to-end within 1% — asserted per row)\n",
            bytes_label(size)
        ));
        out.push_str(&render(
            &row![
                "group",
                "e2e (ms)",
                "transfer",
                "link",
                "sender",
                "receiver",
                "sched-idle",
                "events"
            ],
            &rows,
        ));
        out.push('\n');
    }

    // Per-rank timeline of one representative configuration: when each
    // rank saw its first block, when it delivered, and how many blocks
    // it moved — the flight recorder's answer to "who was the straggler".
    let (_, events, _) = run_traced_multicast(&spec, 8, Algorithm::BinomialPipeline, 8 * MB, MB);
    let rows: Vec<Vec<String>> = trace::stall::timelines(&events, 0)
        .iter()
        .map(|t| {
            let ms = |x: Option<u64>| {
                x.map_or_else(|| "-".to_owned(), |v| format!("{:.2}", v as f64 / 1e6))
            };
            row![
                t.rank,
                ms(t.first_block_ns),
                ms(t.delivered_ns),
                t.blocks_received,
                t.blocks_sent
            ]
        })
        .collect();
    out.push_str("Per-rank timeline (8 MB, group of 8, binomial pipeline)\n");
    out.push_str(&render(
        &row![
            "rank",
            "first blk (ms)",
            "delivered (ms)",
            "rx blks",
            "tx blks"
        ],
        &rows,
    ));
    out
}

/// One measured cell of the multigroup sweep: a (topology, shard count,
/// offered load, pacing policy) combination.
pub struct MultigroupCell {
    /// `"flat"` (Fractus-like) or `"oversubscribed"` (Apt-like ToR).
    pub topology: &'static str,
    /// Number of shard groups sharing the fabric.
    pub shards: usize,
    /// Aggregate offered load across all shards, Gb/s.
    pub offered_gbps: f64,
    /// `"unpaced"` or the admission policy label.
    pub policy: String,
    /// Messages the schedule offered.
    pub messages: usize,
    /// Median delivery latency (submit to last replica), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Goodput over the run (payload bytes once per group), Gb/s.
    pub agg_gbps: f64,
    /// Block sends the admission layer held back at least once.
    pub deferred_sends: u64,
    /// Trace rollup: ideal wire time across all groups, milliseconds.
    pub transfer_ms: f64,
    /// Trace rollup: admission (pacer) wait, milliseconds.
    pub sender_limited_ms: f64,
    /// Trace rollup: wire occupancy beyond ideal, milliseconds.
    pub link_limited_ms: f64,
}

/// The multigroup sweep's results, renderable as text and as the
/// `multigroup` section of `BENCH_simnet.json`.
pub struct MultigroupReport {
    /// One cell per (topology, shards, load, policy) run.
    pub cells: Vec<MultigroupCell>,
}

impl MultigroupReport {
    /// Text table for the report output.
    pub fn text(&self) -> String {
        let mut out = String::from(
            "Multigroup steady state: open-loop sharded tenants, per-NIC send admission\n",
        );
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                row![
                    c.topology,
                    c.shards,
                    format!("{:.0}", c.offered_gbps),
                    c.policy,
                    format!("{:.2}", c.p50_ms),
                    format!("{:.2}", c.p99_ms),
                    format!("{:.1}", c.agg_gbps),
                    c.deferred_sends,
                    format!("{:.1}", c.sender_limited_ms),
                    format!("{:.1}", c.link_limited_ms)
                ]
            })
            .collect();
        out.push_str(&render(
            &row![
                "topology",
                "shards",
                "offered Gb/s",
                "policy",
                "p50 ms",
                "p99 ms",
                "agg Gb/s",
                "deferred",
                "sender ms",
                "link ms"
            ],
            &rows,
        ));
        out.push('\n');
        out
    }

    /// The `multigroup` JSON array (keys in fixed order, byte-stable for
    /// a given cell list).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"topology\": \"{}\", \"shards\": {}, \"offered_gbps\": {:.1}, \
                 \"policy\": \"{}\", \"messages\": {}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"agg_gbps\": {:.2}, \"deferred_sends\": {}, \
                 \"transfer_ms\": {:.3}, \"sender_limited_ms\": {:.3}, \
                 \"link_limited_ms\": {:.3}}}{}\n",
                c.topology,
                c.shards,
                c.offered_gbps,
                c.policy,
                c.messages,
                c.p50_ms,
                c.p99_ms,
                c.agg_gbps,
                c.deferred_sends,
                c.transfer_ms,
                c.sender_limited_ms,
                c.link_limited_ms,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]");
        out
    }
}

/// The multi-tenant traffic engine's sweep: a Derecho-style sharded
/// deployment (overlapping 3-replica shard groups over one fabric) under
/// an open-loop arrival schedule, at several shard-count x offered-load
/// points, on the flat Fractus-like fabric and the oversubscribed
/// Apt-like fabric — each point unpaced and under every admission
/// policy. Every run is traced so the per-group stall rollup can split
/// admission wait from link contention.
pub fn multigroup_sweep(quick: bool) -> MultigroupReport {
    const NODES: usize = 16;
    let messages = if quick { 64 } else { 160 };
    // (per-shard offered capacity scale in Gb/s, load factors): per-shard
    // sustainable throughput differs by an order of magnitude between the
    // full-bisection and oversubscribed fabrics.
    let topologies: [(&'static str, ClusterSpec, f64); 2] = [
        ("flat", ClusterSpec::fractus(NODES), 24.0),
        ("oversubscribed", ClusterSpec::apt(4, 4), 7.0),
    ];
    // Shard-count x relative-load grid: light load, near saturation, and
    // past it (open loop keeps offering regardless).
    let points: [(usize, f64); 5] = [(8, 0.5), (8, 1.5), (16, 0.5), (16, 1.5), (24, 1.2)];
    let policies: [(&'static str, Option<rdmc_sim::PacerConfig>); 4] = [
        ("unpaced", None),
        (
            "fifo",
            Some(rdmc_sim::PacerConfig::new(5, rdmc_sim::PacingPolicy::Fifo)),
        ),
        (
            "smallest_first",
            Some(rdmc_sim::PacerConfig::new(
                5,
                rdmc_sim::PacingPolicy::SmallestFirst,
            )),
        ),
        (
            "round_robin",
            Some(rdmc_sim::PacerConfig::new(
                5,
                rdmc_sim::PacingPolicy::RoundRobin,
            )),
        ),
    ];

    let mut configs = Vec::new();
    for (topo, spec, cap) in &topologies {
        for &(shards, factor) in &points {
            for (policy, pacing) in &policies {
                configs.push((
                    *topo,
                    spec.clone(),
                    shards,
                    factor * *cap * shards as f64,
                    *policy,
                    *pacing,
                ));
            }
        }
    }
    let cells = par_map(&configs, |(topo, spec, shards, offered, policy, pacing)| {
        let workload = ShardedWorkload {
            seed: 0x1DE5,
            nodes: NODES,
            shards: *shards,
            replication_factor: 4,
            offered_gbps: *offered,
            median_bytes: 1.7e6,
            mean_bytes: 2e6,
            min_bytes: 256 << 10,
            max_bytes: 6 * MB,
        };
        let memberships: Vec<Vec<usize>> = (0..*shards).map(|s| workload.members(s)).collect();
        let arrivals: Vec<rdmc_sim::OpenLoopArrival> = workload
            .generate(messages)
            .into_iter()
            .map(|a| rdmc_sim::OpenLoopArrival {
                at_ns: a.at_ns,
                group_index: a.shard,
                size: a.size,
            })
            .collect();
        let outcome = rdmc_sim::run_open_loop(spec, &memberships, &arrivals, MB / 8, *pacing, true);
        let latencies: Vec<f64> = outcome
            .all_latencies()
            .iter()
            .map(|l| l.as_secs_f64() * 1e3)
            .collect();
        let stall_sum = |f: fn(&trace::stall::GroupStall) -> u64| -> f64 {
            outcome
                .per_group
                .iter()
                .filter_map(|g| g.stall.as_ref())
                .map(f)
                .sum::<u64>() as f64
                / 1e6
        };
        MultigroupCell {
            topology: topo,
            shards: *shards,
            offered_gbps: *offered,
            policy: (*policy).to_owned(),
            messages,
            p50_ms: stats::percentile(&latencies, 50.0),
            p99_ms: stats::percentile(&latencies, 99.0),
            agg_gbps: outcome.aggregate_gbps(),
            deferred_sends: outcome.pacing.map_or(0, |p| p.deferred_sends),
            transfer_ms: stall_sum(|s| s.transfer_ns),
            sender_limited_ms: stall_sum(|s| s.sender_limited_ns),
            link_limited_ms: stall_sum(|s| s.link_limited_ns),
        }
    });
    MultigroupReport { cells }
}

/// One cell of the atomic multicast sweep: the sharded serving
/// workload replayed through one ordering mode at one shard-count /
/// offered-load point.
pub struct AtomicCell {
    /// `"multi_sender"` (rotated atomic overlay) or `"single_sender"`
    /// (raw RDMC from the shard root, legacy §4.6 stability path).
    pub mode: &'static str,
    /// Number of shard groups sharing the fabric.
    pub shards: usize,
    /// Aggregate offered load across all shards, Gb/s.
    pub offered_gbps: f64,
    /// Messages the schedule offered (all commit before quiescence).
    pub messages: usize,
    /// Committed (delivered-at-every-member) operations per second over
    /// the run's makespan.
    pub committed_ops_per_s: f64,
    /// Median commit latency (arrival to the last member's upcall), ms.
    pub p50_ms: f64,
    /// 99th-percentile commit latency, milliseconds.
    pub p99_ms: f64,
}

/// The atomic sweep's results, renderable as text and as the `atomic`
/// section of `BENCH_simnet.json`.
pub struct AtomicReport {
    /// One cell per (shards, load, mode) run.
    pub cells: Vec<AtomicCell>,
}

impl AtomicReport {
    /// Text table for the report output.
    pub fn text(&self) -> String {
        let mut out = String::from(
            "Atomic multicast: committed ops/s, rotated multi-sender vs single-sender RDMC\n",
        );
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                row![
                    c.mode,
                    c.shards,
                    format!("{:.0}", c.offered_gbps),
                    c.messages,
                    format!("{:.0}", c.committed_ops_per_s),
                    format!("{:.2}", c.p50_ms),
                    format!("{:.2}", c.p99_ms)
                ]
            })
            .collect();
        out.push_str(&render(
            &row![
                "mode",
                "shards",
                "offered Gb/s",
                "messages",
                "committed/s",
                "p50 ms",
                "p99 ms"
            ],
            &rows,
        ));
        out.push('\n');
        out
    }

    /// The `atomic` JSON array (keys in fixed order, byte-stable for a
    /// given cell list).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"shards\": {}, \"offered_gbps\": {:.1}, \
                 \"messages\": {}, \"committed_ops_per_s\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}}}{}\n",
                c.mode,
                c.shards,
                c.offered_gbps,
                c.messages,
                c.committed_ops_per_s,
                c.p50_ms,
                c.p99_ms,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]");
        out
    }
}

/// Runs the sharded workload once at one point in one ordering mode and
/// measures commit latency (arrival to the last member's total-order
/// upcall) for every message.
fn atomic_point(shards: usize, offered_gbps: f64, messages: usize, multi: bool) -> AtomicCell {
    const NODES: usize = 16;
    // The small-message end of the serving story (Spindle's regime):
    // dissemination latency, not fabric bandwidth, is what bounds a
    // single sender here, which is exactly where rotating the sender
    // role multiplies the in-flight message budget.
    let workload = ShardedWorkload {
        seed: 0xA70,
        nodes: NODES,
        shards,
        replication_factor: 4,
        offered_gbps,
        median_bytes: 192e3,
        mean_bytes: 256e3,
        min_bytes: 64 << 10,
        max_bytes: MB,
    };
    let group_spec = |members: Vec<usize>| GroupSpec {
        members,
        algorithm: Algorithm::BinomialPipeline,
        block_size: 64 << 10,
        ready_window: 2,
        max_outstanding_sends: 1,
    };
    let arrivals = workload.generate(messages);
    let spec = ClusterSpec::fractus(NODES);
    // (arrival ns, commit time) per message, either mode.
    let mut commits: Vec<(u64, simnet::SimTime)> = Vec::with_capacity(arrivals.len());
    if multi {
        let mut builder = ClusterBuilder::new(spec);
        for s in 0..shards {
            builder = builder.atomic(group_spec(workload.members(s)));
        }
        let mut cluster = builder.build();
        let mut pending: Vec<(usize, rdmc_sim::MessageId, u64)> = Vec::new();
        for a in &arrivals {
            let id = cluster.schedule_atomic_send_at(
                a.shard,
                simnet::SimTime::from_nanos(a.at_ns),
                a.size,
            );
            pending.push((a.shard, id, a.at_ns));
        }
        cluster.run();
        for (s, id, at_ns) in pending {
            let commit = cluster
                .atomic_live_members(s)
                .iter()
                .map(|&m| {
                    cluster
                        .atomic_log(s, m)
                        .iter()
                        .find(|d| d.message == id)
                        .expect("every offered message commits")
                        .at
                })
                .max()
                .expect("atomic group has members");
            commits.push((at_ns, commit));
        }
    } else {
        let mut cluster = ClusterBuilder::new(spec).build();
        let groups: Vec<rdmc_sim::GroupId> = (0..shards)
            .map(|s| {
                let g = cluster.create_group(group_spec(workload.members(s)));
                cluster.enable_atomic_delivery(g);
                g
            })
            .collect();
        let mut per_group: Vec<Vec<u64>> = vec![Vec::new(); shards];
        for a in &arrivals {
            cluster.schedule_send_at(
                groups[a.shard],
                simnet::SimTime::from_nanos(a.at_ns),
                a.size,
            );
            per_group[a.shard].push(a.at_ns);
        }
        cluster.run();
        for (s, &g) in groups.iter().enumerate() {
            let n = workload.members(s).len();
            // Single-sender FIFO: the k-th stable delivery is the k-th
            // arrival of that shard; commit = slowest member's upcall.
            for (k, &at_ns) in per_group[s].iter().enumerate() {
                let commit = (0..n)
                    .map(|r| cluster.stable_deliveries(g, r as u32)[k])
                    .max()
                    .expect("group has members");
                commits.push((at_ns, commit));
            }
        }
    }
    let latencies: Vec<f64> = commits
        .iter()
        .map(|&(at_ns, commit)| (commit.as_secs_f64() - at_ns as f64 / 1e9) * 1e3)
        .collect();
    let first_arrival = commits.iter().map(|&(at, _)| at).min().unwrap_or(0) as f64 / 1e9;
    let last_commit = commits
        .iter()
        .map(|&(_, c)| c)
        .max()
        .map_or(0.0, |c| c.as_secs_f64());
    AtomicCell {
        mode: if multi {
            "multi_sender"
        } else {
            "single_sender"
        },
        shards,
        offered_gbps,
        messages,
        committed_ops_per_s: commits.len() as f64 / (last_commit - first_arrival).max(1e-9),
        p50_ms: stats::percentile(&latencies, 50.0),
        p99_ms: stats::percentile(&latencies, 99.0),
    }
}

/// The atomic multicast sweep: the ShardedWorkload serving story at the
/// small-message end, each shard ordered either by the rotated
/// multi-sender overlay or by a single root sender on raw RDMC (the
/// legacy §4.6 stability path), measured as *committed* operations per
/// second — a message counts only once every member has issued its
/// total-order upcall. Rotation multiplies the per-shard in-flight
/// budget by the member count, which is what keeps the committed rate
/// at the offered rate when a lone sender's dissemination latency
/// cannot.
pub fn atomic_sweep(quick: bool) -> AtomicReport {
    let messages = if quick { 48 } else { 120 };
    // Per-shard offered capacity scale (Gb/s) x load factors: light,
    // and past what one sender can serialize.
    let points: [(usize, f64); 3] = [(8, 0.5), (8, 1.5), (16, 1.2)];
    let mut configs = Vec::new();
    for &(shards, factor) in &points {
        for &multi in &[true, false] {
            configs.push((shards, factor * 16.0 * shards as f64, multi));
        }
    }
    let cells = par_map(&configs, |(shards, offered, multi)| {
        atomic_point(*shards, *offered, messages, *multi)
    });
    AtomicReport { cells }
}

/// One cell of the lossy-WAN reliability sweep: one policy at one
/// per-WAN-link loss rate, aggregated over independent seeded runs.
pub struct ReliabilityCell {
    /// Reliability policy label.
    pub policy: &'static str,
    /// Per-WAN-link loss probability, percent.
    pub loss_pct: f64,
    /// Independent single-message runs at this point.
    pub messages: usize,
    /// Runs whose message reached every surviving rank.
    pub completed: usize,
    /// Median delivery latency (submit to last survivor), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile delivery latency, milliseconds.
    pub p99_ms: f64,
    /// NACK control writes sent across all runs.
    pub nacks: u64,
    /// Retransmitted blocks delivered across all runs.
    pub retransmissions: u64,
    /// Blocks reconstructed from erasure parity across all runs.
    pub parity_repairs: u64,
    /// Connections escalated to epoch recovery across all runs.
    pub escalations: u64,
}

/// The reliability sweep's results, renderable as text and as the
/// `reliability` section of `BENCH_simnet.json`.
pub struct ReliabilityReport {
    /// One cell per (policy, loss rate) point.
    pub cells: Vec<ReliabilityCell>,
}

impl ReliabilityReport {
    /// Text table for the report output.
    pub fn text(&self) -> String {
        let mut out = String::from(
            "Reliability under WAN loss: geo 2-site cluster (50 ms WAN), 8 MB messages,\n\
             per-group reliability policy vs per-WAN-link loss rate\n",
        );
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                row![
                    c.policy,
                    format!("{:.1}%", c.loss_pct),
                    format!("{}/{}", c.completed, c.messages),
                    format!("{:.1}", c.p50_ms),
                    format!("{:.1}", c.p99_ms),
                    c.nacks,
                    c.retransmissions,
                    c.parity_repairs,
                    c.escalations
                ]
            })
            .collect();
        out.push_str(&render(
            &row![
                "policy",
                "loss",
                "completed",
                "p50 ms",
                "p99 ms",
                "nacks",
                "retrans",
                "parity fix",
                "escalations"
            ],
            &rows,
        ));
        out.push('\n');
        out
    }

    /// The `reliability` JSON array (keys in fixed order, byte-stable
    /// for a given cell list).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"loss_pct\": {:.1}, \"messages\": {}, \
                 \"completed\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"nacks\": {}, \"retransmissions\": {}, \"parity_repairs\": {}, \
                 \"escalations\": {}}}{}\n",
                c.policy,
                c.loss_pct,
                c.messages,
                c.completed,
                c.p50_ms,
                c.p99_ms,
                c.nacks,
                c.retransmissions,
                c.parity_repairs,
                c.escalations,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]");
        out
    }
}

/// One point of the reliability sweep: `messages` independent seeded
/// runs of an 8 MB multicast on the geo 2-site cluster, with `loss_pct`
/// per-WAN-link loss and the group protected by `policy`.
fn reliability_point(
    policy_label: &'static str,
    policy: rdmc_sim::ReliabilityPolicy,
    loss_pct: f64,
    messages: usize,
) -> ReliabilityCell {
    use simnet::{FaultProfile, LinkFault};
    let mut latencies = Vec::new();
    let mut completed = 0usize;
    let mut nacks = 0u64;
    let mut retransmissions = 0u64;
    let mut parity_repairs = 0u64;
    let mut escalations = 0u64;
    for run in 0..messages {
        let mut cluster = ClusterBuilder::new(ClusterSpec::geo(4))
            .recovery(RecoveryConfig::default())
            .reliability(policy)
            .build();
        if loss_pct > 0.0 {
            let mut profile = FaultProfile::new(0xC0F_FEE ^ run as u64);
            for link in cluster.fabric().topology().wan_links() {
                profile.set_link(link, LinkFault::lossy(loss_pct / 100.0));
            }
            cluster.set_fault_profile(profile);
        }
        let group = cluster.create_group(GroupSpec {
            members: (0..4).collect(),
            algorithm: Algorithm::BinomialPipeline,
            block_size: MB,
            ready_window: 4,
            max_outstanding_sends: 2,
        });
        cluster.submit_send(group, 8 * MB);
        cluster.run();
        let survivors = cluster.surviving_ranks(group);
        let r = &cluster.message_results()[0];
        let done_at = survivors
            .iter()
            .map(|&o| r.delivered_at[o as usize])
            .collect::<Option<Vec<_>>>()
            .and_then(|ts| ts.into_iter().max());
        if let Some(last) = done_at {
            completed += 1;
            latencies.push(last.since(r.submitted).as_secs_f64() * 1e3);
        }
        let s = cluster.reliability_stats();
        nacks += s.nacks_sent;
        retransmissions += s.repairs_received;
        parity_repairs += s.parity_repairs;
        escalations += s.escalations;
    }
    ReliabilityCell {
        policy: policy_label,
        loss_pct,
        messages,
        completed,
        p50_ms: stats::percentile(&latencies, 50.0),
        p99_ms: stats::percentile(&latencies, 99.0),
        nacks,
        retransmissions,
        parity_repairs,
        escalations,
    }
}

/// The lossy-WAN reliability sweep: every policy at every loss rate on
/// the geo 2-site cluster. The headline is the SDR-RDMA story —
/// selective-ack pays a 100 ms WAN round trip per lost block, so its
/// tail latency climbs with the loss rate, while erasure parity repairs
/// losses from data already on the wire and holds p99 nearly flat
/// through 1% loss; wedge/resume escalates every loss to epoch
/// recovery, the right trade only when losses mean a failing peer.
pub fn reliability_sweep(quick: bool) -> ReliabilityReport {
    let messages = if quick { 6 } else { 16 };
    let policies: [(&'static str, rdmc_sim::ReliabilityPolicy); 3] = [
        (
            "selective-ack",
            rdmc_sim::ReliabilityPolicy::selective_ack(),
        ),
        ("erasure-2+1", rdmc_sim::ReliabilityPolicy::erasure(2, 1)),
        ("wedge-resume", rdmc_sim::ReliabilityPolicy::wedge_resume()),
    ];
    let rates = [0.0, 0.1, 1.0, 5.0];
    let mut configs = Vec::new();
    for (label, policy) in &policies {
        for &pct in &rates {
            configs.push((*label, *policy, pct));
        }
    }
    let cells = par_map(&configs, |(label, policy, pct)| {
        reliability_point(label, *policy, *pct, messages)
    });
    ReliabilityReport { cells }
}

/// The disabled-recorder overhead record written to `BENCH_simnet.json`.
pub struct TraceOverhead {
    /// Events a fully traced Fig. 4 run (group of 16, 8 MB) records.
    pub events: u64,
    /// Cost of one record call against a disabled recorder.
    pub ns_per_disabled_call: f64,
    /// Wall time of the same run with tracing off entirely.
    pub wall_disabled_s: f64,
    /// `events x ns_per_call` as a fraction of the untraced wall time —
    /// what leaving the instrumentation compiled-in but disabled costs.
    pub overhead_pct: f64,
}

/// Measures the zero-cost-when-disabled claim on the Fig. 4 bench path:
/// count the events a traced run records, time the untraced run, and
/// time the disabled-recorder fast path per call.
pub fn trace_overhead_probe(quick: bool) -> TraceOverhead {
    let spec = ClusterSpec::fractus(16);
    let (_, events, _) = run_traced_multicast(&spec, 16, Algorithm::BinomialPipeline, 8 * MB, MB);
    let events = events.len() as u64;

    let t = std::time::Instant::now();
    let _ = run_single_multicast(&spec, 16, Algorithm::BinomialPipeline, 8 * MB, MB);
    let wall_disabled_s = t.elapsed().as_secs_f64();

    let recorder = trace::Recorder::disabled();
    let scope = trace::Scope::group_rank(0, 0);
    let iters: u64 = if quick { 1_000_000 } else { 10_000_000 };
    let t = std::time::Instant::now();
    for i in 0..iters {
        let r = std::hint::black_box(&recorder);
        r.record(scope, || trace::EventKind::ReadyHeard { from: i as u32 });
    }
    let ns_per_disabled_call = t.elapsed().as_nanos() as f64 / iters as f64;

    TraceOverhead {
        events,
        ns_per_disabled_call,
        wall_disabled_s,
        overhead_pct: 100.0 * events as f64 * ns_per_disabled_call / (wall_disabled_s * 1e9),
    }
}

/// Writes the Chrome `trace_event` export of one traced multicast to
/// `path` (open it in `chrome://tracing` or Perfetto).
pub fn write_sample_chrome_trace(path: &str) -> std::io::Result<()> {
    let spec = ClusterSpec::fractus(8);
    let (_, events, _) = run_traced_multicast(&spec, 8, Algorithm::BinomialPipeline, 8 * MB, MB);
    std::fs::write(path, trace::export::to_chrome_trace(&events))
}

/// The 1000-node sharded-workload half of the `scale` section.
pub struct ScaleShardedCell {
    /// Cluster (and workload) node count.
    pub nodes: usize,
    /// Shard groups sharing the fabric.
    pub shards: usize,
    /// Messages the open-loop schedule offered.
    pub messages: usize,
    /// Median delivery latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Goodput over the run, Gb/s.
    pub agg_gbps: f64,
    /// RNR arms during the run (must be zero).
    pub rnr_arms: u64,
    /// Fabric events processed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Rate reallocations run.
    pub reallocs: u64,
    /// Reallocations per offered message.
    pub reallocs_per_arrival: f64,
    /// Links visited per reallocation (ripple-set size).
    pub link_visits_per_realloc: f64,
    /// Flow starts/removals absorbed by same-instant coalescing.
    pub coalesced: u64,
    /// Completion-heap compactions.
    pub heap_compactions: u64,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
}

/// The 10k-flow churn half of the `scale` section: the same flow churn
/// on the legacy flat kernel (participating uplinks, per-flow entries)
/// and the hierarchy-aware kernel (transparent fat-tree tier, interned
/// flow sets).
pub struct ScaleChurnCell {
    /// Concurrent flows held live through the churn.
    pub flows: usize,
    /// Churn operations (each = one removal + one start).
    pub ops: usize,
    /// Ripple link-visits per kernel event, legacy kernel.
    pub legacy_visits_per_event: f64,
    /// Ripple link-visits per kernel event, hierarchy-aware kernel.
    pub scaled_visits_per_event: f64,
    /// `legacy / scaled` — the acceptance bar is >= 5x.
    pub visit_speedup: f64,
    /// Kernel events per wall-clock second, legacy kernel.
    pub legacy_events_per_sec: f64,
    /// Kernel events per wall-clock second, hierarchy-aware kernel.
    pub scaled_events_per_sec: f64,
    /// Same-instant coalescing hits in the hierarchy-aware run.
    pub scaled_coalesced: u64,
    /// Heap compactions in the hierarchy-aware run.
    pub scaled_heap_compactions: u64,
}

/// The datacenter-scale section: sharded run + churn microbench,
/// renderable as text and as the `scale` object of `BENCH_simnet.json`.
pub struct ScaleReport {
    /// 1000-node, 100-shard open-loop run.
    pub sharded: ScaleShardedCell,
    /// 10k-flow churn microbench.
    pub churn: ScaleChurnCell,
}

impl ScaleReport {
    /// Text tables for the report output.
    pub fn text(&self) -> String {
        let s = &self.sharded;
        let mut out = String::from(
            "Datacenter scale: 1000-node fat-tree, 100-shard open-loop workload \
             (interned paths, transparent aggregation tier)\n",
        );
        out.push_str(&render(
            &row![
                "nodes",
                "shards",
                "msgs",
                "p50 ms",
                "p99 ms",
                "agg Gb/s",
                "events/s",
                "reallocs/msg",
                "links/realloc",
                "coalesced",
                "wall"
            ],
            &[row![
                s.nodes,
                s.shards,
                s.messages,
                format!("{:.2}", s.p50_ms),
                format!("{:.2}", s.p99_ms),
                format!("{:.1}", s.agg_gbps),
                format!("{:.0}k", s.events_per_sec / 1e3),
                format!("{:.2}", s.reallocs_per_arrival),
                format!("{:.1}", s.link_visits_per_realloc),
                s.coalesced,
                format!("{:.2}s", s.wall_s)
            ]],
        ));
        let c = &self.churn;
        out.push_str(&format!(
            "\n10k-flow churn microbench: {} live flows, {} churn ops, fat-tree profile\n",
            c.flows, c.ops
        ));
        out.push_str(&render(
            &row![
                "kernel",
                "link-visits/event",
                "events/s",
                "coalesced",
                "compactions"
            ],
            &[
                row![
                    "legacy (flat)",
                    format!("{:.1}", c.legacy_visits_per_event),
                    format!("{:.0}", c.legacy_events_per_sec),
                    "-",
                    "-"
                ],
                row![
                    "hierarchy-aware",
                    format!("{:.1}", c.scaled_visits_per_event),
                    format!("{:.0}", c.scaled_events_per_sec),
                    c.scaled_coalesced,
                    c.scaled_heap_compactions
                ],
            ],
        ));
        out.push_str(&format!(
            "ripple link-visit reduction: {:.1}x\n",
            c.visit_speedup
        ));
        out
    }

    /// The `scale` JSON object (keys in fixed order).
    pub fn to_json(&self) -> String {
        let s = &self.sharded;
        let c = &self.churn;
        format!(
            "{{\n    \"sharded\": {{\"nodes\": {}, \"shards\": {}, \"messages\": {}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"agg_gbps\": {:.2}, \
             \"rnr_arms\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"reallocs\": {}, \"reallocs_per_arrival\": {:.3}, \
             \"link_visits_per_realloc\": {:.2}, \"coalesced\": {}, \
             \"heap_compactions\": {}, \"wall_s\": {:.3}}},\n    \
             \"churn\": {{\"flows\": {}, \"ops\": {}, \
             \"legacy_visits_per_event\": {:.2}, \"scaled_visits_per_event\": {:.2}, \
             \"visit_speedup\": {:.2}, \"legacy_events_per_sec\": {:.0}, \
             \"scaled_events_per_sec\": {:.0}, \"scaled_coalesced\": {}, \
             \"scaled_heap_compactions\": {}}}\n  }}",
            s.nodes,
            s.shards,
            s.messages,
            s.p50_ms,
            s.p99_ms,
            s.agg_gbps,
            s.rnr_arms,
            s.events,
            s.events_per_sec,
            s.reallocs,
            s.reallocs_per_arrival,
            s.link_visits_per_realloc,
            s.coalesced,
            s.heap_compactions,
            s.wall_s,
            c.flows,
            c.ops,
            c.legacy_visits_per_event,
            c.scaled_visits_per_event,
            c.visit_speedup,
            c.legacy_events_per_sec,
            c.scaled_events_per_sec,
            c.scaled_coalesced,
            c.scaled_heap_compactions,
        )
    }
}

/// Runs the 1000-node, 100-shard `ShardedWorkload` on the fat-tree
/// datacenter profile with path interning — ROADMAP item 5's target
/// configuration — and meters the kernel while it runs.
fn scale_sharded(quick: bool) -> ScaleShardedCell {
    const NODES: usize = 1000;
    const SHARDS: usize = 100;
    let messages = if quick { 150 } else { 1500 };
    let spec = ClusterSpec::datacenter(NODES);
    assert_eq!(spec.topology.nodes(), NODES);
    let workload = ShardedWorkload {
        seed: 0xDC5C,
        nodes: NODES,
        shards: SHARDS,
        replication_factor: 3,
        offered_gbps: 400.0,
        median_bytes: 1.7e6,
        mean_bytes: 2e6,
        min_bytes: 256 << 10,
        max_bytes: 6 * MB,
    };
    let memberships: Vec<Vec<usize>> = (0..SHARDS).map(|s| workload.members(s)).collect();
    let arrivals: Vec<rdmc_sim::OpenLoopArrival> = workload
        .generate(messages)
        .into_iter()
        .map(|a| rdmc_sim::OpenLoopArrival {
            at_ns: a.at_ns,
            group_index: a.shard,
            size: a.size,
        })
        .collect();
    let base = verbs::perf::snapshot();
    let t0 = std::time::Instant::now();
    let outcome =
        rdmc_sim::run_open_loop_with(&spec, &memberships, &arrivals, MB / 8, None, false, true);
    let wall_s = t0.elapsed().as_secs_f64();
    let d = verbs::perf::snapshot().delta_since(&base);
    let latencies: Vec<f64> = outcome
        .all_latencies()
        .iter()
        .map(|l| l.as_secs_f64() * 1e3)
        .collect();
    ScaleShardedCell {
        nodes: NODES,
        shards: SHARDS,
        messages,
        p50_ms: stats::percentile(&latencies, 50.0),
        p99_ms: stats::percentile(&latencies, 99.0),
        agg_gbps: outcome.aggregate_gbps(),
        rnr_arms: outcome.rnr_arms,
        events: d.events,
        events_per_sec: if wall_s > 0.0 {
            d.events as f64 / wall_s
        } else {
            0.0
        },
        reallocs: d.realloc_count,
        reallocs_per_arrival: d.realloc_count as f64 / messages as f64,
        link_visits_per_realloc: if d.realloc_count == 0 {
            0.0
        } else {
            d.link_visits as f64 / d.realloc_count as f64
        },
        coalesced: d.coalesced,
        heap_compactions: d.heap_compactions,
        wall_s,
    }
}

/// One churn run at the flow-network level: `conns` node pairs on a
/// 1000-host two-tier fabric, `flows_per_conn` long-lived flows per pair
/// (the multicast "many flows, same path" shape), then `ops` churn steps
/// of one removal plus one start each. `scaled` picks the
/// hierarchy-aware kernel (transparent fat-tree tier + interned paths)
/// over the legacy flat one. Returns the stats delta over the churn loop
/// and its wall-clock seconds.
fn churn_once(
    scaled: bool,
    conns: usize,
    flows_per_conn: usize,
    ops: usize,
) -> (simnet::ReallocStats, f64) {
    use simnet::SimTime;
    let (pods, per_pod) = (40usize, 25usize);
    let hosts = pods * per_pod;
    let mut net = simnet::FlowNet::new();
    if scaled {
        net.set_interning(true);
    }
    let latency = SimDuration::from_micros(4);
    let topo = if scaled {
        simnet::Topology::fat_tree(&mut net, pods, per_pod, 100.0, latency)
    } else {
        simnet::Topology::two_tier(&mut net, pods, per_pod, 100.0, 2500.0, latency)
    };
    // Deterministic splitmix-style generator: no wall clock, no rand dep.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rnd = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    // Disjoint cross-pod sender/receiver pairs — the sharded-multicast
    // shape: each connection carries many concurrent block transfers
    // (same path), and distinct connections share no host NIC. The only
    // thing coupling them is the aggregation tier, which is exactly what
    // the hierarchy-aware kernel knows can never bind.
    assert!(2 * conns <= hosts, "pairs must be node-disjoint");
    let pairs: Vec<(usize, usize)> = (0..conns).map(|i| (i, hosts / 2 + i)).collect();
    // Big enough that nothing completes during the run.
    const FLOW_BYTES: f64 = 1e12;
    let mut live = Vec::with_capacity(conns * flows_per_conn);
    for &(a, b) in &pairs {
        for _ in 0..flows_per_conn {
            live.push(net.start_flow(SimTime::ZERO, topo.path(a, b), FLOW_BYTES));
        }
    }
    net.next_completion(); // flush the setup burst before metering
    let base = net.realloc_stats();
    let t0 = std::time::Instant::now();
    for op in 0..ops {
        let now = SimTime::from_nanos(1_000 * (op as u64 + 1));
        let victim = rnd(live.len());
        net.abort_flow(now, live.swap_remove(victim));
        let (a, b) = pairs[rnd(pairs.len())];
        live.push(net.start_flow(now, topo.path(a, b), FLOW_BYTES));
        net.next_completion(); // force the deferred reallocation
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let after = net.realloc_stats();
    let d = simnet::ReallocStats {
        count: after.count - base.count,
        full: after.full - base.full,
        nanos: after.nanos - base.nanos,
        flows_visited: after.flows_visited - base.flows_visited,
        heap_pushes: after.heap_pushes - base.heap_pushes,
        rate_changes: after.rate_changes - base.rate_changes,
        link_visits: after.link_visits - base.link_visits,
        coalesced: after.coalesced - base.coalesced,
        heap_compactions: after.heap_compactions - base.heap_compactions,
    };
    (d, wall_s)
}

/// The 10k-flow churn microbench: identical churn on the legacy flat
/// kernel and the hierarchy-aware kernel, compared on ripple link-visits
/// per kernel event (one event = one flow start or removal).
fn scale_churn(quick: bool) -> ScaleChurnCell {
    const CONNS: usize = 500;
    const FLOWS_PER_CONN: usize = 20; // 10k live flows
    let ops = if quick { 200 } else { 1_000 };
    let events = 2 * ops as u64;
    let (legacy, legacy_wall) = churn_once(false, CONNS, FLOWS_PER_CONN, ops);
    let (scaled, scaled_wall) = churn_once(true, CONNS, FLOWS_PER_CONN, ops);
    let per_event = |d: &simnet::ReallocStats| d.link_visits as f64 / events as f64;
    ScaleChurnCell {
        flows: CONNS * FLOWS_PER_CONN,
        ops,
        legacy_visits_per_event: per_event(&legacy),
        scaled_visits_per_event: per_event(&scaled),
        visit_speedup: per_event(&legacy) / per_event(&scaled).max(f64::MIN_POSITIVE),
        legacy_events_per_sec: events as f64 / legacy_wall.max(f64::MIN_POSITIVE),
        scaled_events_per_sec: events as f64 / scaled_wall.max(f64::MIN_POSITIVE),
        scaled_coalesced: scaled.coalesced,
        scaled_heap_compactions: scaled.heap_compactions,
    }
}

/// The datacenter-scale benchmark: the 1000-node sharded run plus the
/// 10k-flow churn microbench (the `scale` section).
pub fn scale_benchmark(quick: bool) -> ScaleReport {
    ScaleReport {
        sharded: scale_sharded(quick),
        churn: scale_churn(quick),
    }
}

// ---------------------------------------------------------------------
// Transport benchmark: real TCP vs simulated prediction (§5.3).
// ---------------------------------------------------------------------

/// One transport's measurement at the matched configuration.
#[derive(Debug, Clone, Copy)]
pub struct TransportCell {
    /// p50 of per-member delivery latency, milliseconds.
    pub p50_ms: f64,
    /// p99 of per-member delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Payload goodput (messages x size, first submit to last
    /// delivery) in gigabits per second.
    pub goodput_gbps: f64,
    /// Wall-clock cost of the run (for TCP this is the measurement;
    /// for the simulation it is the cost of predicting it).
    pub wall_s: f64,
}

/// Real-TCP loopback run vs the simulated prediction at a matched
/// configuration (same group spec, node count, message schedule).
#[derive(Debug, Clone, Copy)]
pub struct TransportReport {
    /// In-process node count (>= 64 in the full run).
    pub nodes: usize,
    /// Messages pushed back-to-back through the group.
    pub messages: usize,
    /// Bytes per message.
    pub message_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u64,
    /// The discrete-event prediction (100 Gb/s flat switch).
    pub simulated: TransportCell,
    /// The measurement over real loopback sockets.
    pub tcp: TransportCell,
}

impl TransportReport {
    /// Text table for the report output.
    pub fn text(&self) -> String {
        let mut out = format!(
            "Transport check: {} in-process nodes, {} x {} binomial pipeline \
             ({} blocks), simulated 100 Gb/s switch vs real loopback TCP\n",
            self.nodes,
            self.messages,
            bytes_label(self.message_bytes),
            bytes_label(self.block_bytes),
        );
        let line = |name: &str, c: &TransportCell| {
            row![
                name,
                format!("{:.2}", c.p50_ms),
                format!("{:.2}", c.p99_ms),
                format!("{:.2}", c.goodput_gbps),
                format!("{:.2}s", c.wall_s)
            ]
        };
        out.push_str(&render(
            &row!["transport", "p50 ms", "p99 ms", "goodput Gb/s", "wall"],
            &[line("simulated", &self.simulated), line("tcp", &self.tcp)],
        ));
        out
    }

    /// The `transport` JSON object (keys in fixed order).
    pub fn to_json(&self) -> String {
        let cell = |c: &TransportCell| {
            format!(
                "{{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"goodput_gbps\": {:.3}, \"wall_s\": {:.3}}}",
                c.p50_ms, c.p99_ms, c.goodput_gbps, c.wall_s
            )
        };
        format!(
            "{{\n    \"nodes\": {}, \"messages\": {}, \"message_bytes\": {}, \
             \"block_bytes\": {},\n    \"simulated\": {},\n    \"tcp\": {}\n  }}",
            self.nodes,
            self.messages,
            self.message_bytes,
            self.block_bytes,
            cell(&self.simulated),
            cell(&self.tcp),
        )
    }
}

/// Runs the matched workload on an already-built cluster and reduces
/// the per-member delivery latencies. Returns the cell plus the
/// transport, so the TCP side can do an error-surfacing shutdown.
fn transport_run<T: verbs::Transport>(
    mut cluster: rdmc_sim::Cluster<T>,
    spec: GroupSpec,
    messages: usize,
    size: u64,
) -> (TransportCell, T) {
    let wall = std::time::Instant::now();
    let group = cluster.create_group(spec);
    for _ in 0..messages {
        cluster.submit_send(group, size);
    }
    cluster.run();
    let wall_s = wall.elapsed().as_secs_f64();

    let mut latencies_ms = Vec::new();
    let mut first_submit = u64::MAX;
    let mut last_delivery = 0u64;
    for r in cluster.message_results() {
        first_submit = first_submit.min(r.submitted.as_nanos());
        for d in &r.delivered_at {
            let d = d.expect("benchmark message must deliver");
            last_delivery = last_delivery.max(d.as_nanos());
            latencies_ms.push((d.as_nanos() - r.submitted.as_nanos()) as f64 / 1e6);
        }
    }
    let span_s = (last_delivery - first_submit) as f64 / 1e9;
    let cell = TransportCell {
        p50_ms: stats::percentile(&latencies_ms, 50.0),
        p99_ms: stats::percentile(&latencies_ms, 99.0),
        goodput_gbps: (messages as u64 * size) as f64 * 8.0 / span_s / 1e9,
        wall_s,
    };
    assert!(cluster.destroy_group(group), "clean close (§4.6)");
    (cell, cluster.into_transport())
}

/// The transport benchmark: the same binomial-pipeline workload over
/// the discrete-event fabric and over real loopback sockets, at a
/// matched configuration with at least 64 in-process nodes (full run).
pub fn transport_benchmark(quick: bool) -> TransportReport {
    let nodes = if quick { 16 } else { 64 };
    let messages = if quick { 3 } else { 6 };
    let size = if quick { MB } else { 2 * MB };
    let block = 64 << 10;
    let spec = pipeline_group_spec((0..nodes).collect(), block, Algorithm::BinomialPipeline);

    let sim = ClusterBuilder::new(ClusterSpec::fractus(nodes)).build();
    let (simulated, _) = transport_run(sim, spec.clone(), messages, size);

    let tcp = rdmc_tcp::builder(nodes).expect("loopback listener").build();
    let (tcp_cell, fabric) = transport_run(tcp, spec, messages, size);
    fabric.shutdown().expect("clean socket teardown");

    TransportReport {
        nodes,
        messages,
        message_bytes: size,
        block_bytes: block,
        simulated,
        tcp: tcp_cell,
    }
}
