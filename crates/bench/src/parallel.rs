//! A tiny deterministic worker pool for the experiment sweeps.
//!
//! Every figure in [`crate::experiments`] is a sweep over independent
//! configurations (each builds its own cluster from scratch), so they can
//! run concurrently. [`par_map`] fans the configurations out over scoped
//! threads and places each result back at its input's index, so the output
//! — and therefore every rendered table — is bit-identical to a serial
//! run regardless of worker count or scheduling.
//!
//! Worker count defaults to the machine's available parallelism and can be
//! pinned with `RDMC_BENCH_THREADS=<n>` (use `1` to measure the kernel
//! without harness parallelism).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use: `RDMC_BENCH_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Some(n) = std::env::var("RDMC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results in input order.
///
/// Work is claimed from a shared atomic cursor (so a slow configuration
/// does not stall the others), but each result is written to its input's
/// slot: the output order is deterministic. A panicking worker propagates
/// the panic to the caller once the scope joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_threads().min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let got = par_map(&items, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u64> = par_map(&[] as &[u64], |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Make early items the slowest so out-of-order completion is
        // likely; ordering must hold regardless.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map(&items, |&i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(got, items);
    }
}
