//! Regenerates every table and figure of the paper's evaluation and
//! prints them as text tables. Run with `--quick` for a fast smoke pass.
//! Sweeps fan out over a worker pool (`RDMC_BENCH_THREADS` pins the
//! width; results are deterministic regardless).
//!
//! Alongside the text report, writes a machine-readable summary of the
//! simulation kernel's performance — wall time, events per second, and
//! reallocation work per section — to `BENCH_simnet.json` (path
//! overridable with `RDMC_BENCH_JSON`).
//!
//! ```sh
//! cargo run --release -p rdmc-bench --bin report
//! ```

#![forbid(unsafe_code)]

use rdmc_bench::experiments as e;
use verbs::perf::{snapshot, KernelPerf};

/// An experiment section: name + generator.
type Section = (&'static str, fn(bool) -> String);

/// One section's kernel-work record for the JSON summary.
struct SectionPerf {
    name: &'static str,
    wall_s: f64,
    work: KernelPerf,
}

// One parameter per optional JSON record; a struct would just move the
// same seven names one level down.
#[allow(clippy::too_many_arguments)]
fn json_summary(
    quick: bool,
    threads: usize,
    total_wall_s: f64,
    sections: &[SectionPerf],
    trace_overhead: Option<&e::TraceOverhead>,
    multigroup: Option<&e::MultigroupReport>,
    atomic: Option<&e::AtomicReport>,
    reliability: Option<&e::ReliabilityReport>,
    scale: Option<&e::ScaleReport>,
    transport: Option<&e::TransportReport>,
    explore: Option<&e::ExploreBench>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"total_wall_s\": {total_wall_s:.3},\n"));
    if let Some(t) = trace_overhead {
        out.push_str(&format!(
            "  \"trace\": {{\"events\": {}, \"ns_per_disabled_call\": {:.3}, \
             \"wall_disabled_s\": {:.3}, \"overhead_pct\": {:.4}}},\n",
            t.events, t.ns_per_disabled_call, t.wall_disabled_s, t.overhead_pct,
        ));
    }
    if let Some(m) = multigroup {
        out.push_str(&format!("  \"multigroup\": {},\n", m.to_json()));
    }
    if let Some(a) = atomic {
        out.push_str(&format!("  \"atomic\": {},\n", a.to_json()));
    }
    if let Some(r) = reliability {
        out.push_str(&format!("  \"reliability\": {},\n", r.to_json()));
    }
    if let Some(s) = scale {
        out.push_str(&format!("  \"scale\": {},\n", s.to_json()));
    }
    if let Some(t) = transport {
        out.push_str(&format!("  \"transport\": {},\n", t.to_json()));
    }
    if let Some(x) = explore {
        out.push_str(&format!("  \"explore\": {},\n", x.to_json()));
    }
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        let d = &s.work;
        let events_per_sec = if s.wall_s > 0.0 {
            d.events as f64 / s.wall_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"realloc_count\": {}, \
             \"realloc_nanos\": {}, \"flows_visited\": {}, \
             \"heap_pushes\": {}, \"rate_changes\": {}, \
             \"full_reallocs\": {}, \"sim_seconds\": {:.3}}}{}\n",
            s.name,
            s.wall_s,
            d.events,
            events_per_sec,
            d.realloc_count,
            d.realloc_nanos,
            d.flows_visited,
            d.heap_pushes,
            d.rate_changes,
            d.full_reallocs,
            d.sim_nanos as f64 / 1e9,
            if i + 1 < sections.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = std::time::Instant::now();
    let sections: Vec<Section> = vec![
        ("fig4", e::fig4_latency),
        ("table1", e::table1_breakdown),
        ("fig5", e::fig5_step_timeline),
        ("fig6", e::fig6_block_size),
        ("fig7", e::fig7_one_byte),
        ("fig8", e::fig8_scalability),
        ("fig9", e::fig9_cosmos),
        ("fig10", e::fig10_overlap),
        ("fig11", e::fig11_interrupts),
        ("fig12", e::fig12_core_direct),
        ("robustness", e::robustness_analysis),
        ("recovery", e::recovery_failover),
        ("sst", e::sst_small_messages),
        ("kernel", e::kernel_throughput),
        ("analyzer", e::analyzer_sweep),
        ("explore", e::explore_throughput),
        ("trace", e::trace_observability),
    ];
    let chrome_path = std::env::args()
        .find_map(|a| a.strip_prefix("--chrome-trace=").map(str::to_owned))
        .or_else(|| std::env::var("RDMC_TRACE_CHROME").ok());
    let baseline_path =
        std::env::args().find_map(|a| a.strip_prefix("--baseline=").map(str::to_owned));
    let only: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            a != "--quick" && !a.starts_with("--chrome-trace=") && !a.starts_with("--baseline=")
        })
        .collect();
    let mut perf: Vec<SectionPerf> = Vec::new();
    for (name, f) in sections {
        if !only.is_empty() && !only.iter().any(|o| o == name) {
            continue;
        }
        let base = snapshot();
        let t = std::time::Instant::now();
        println!("==================== {name} ====================");
        println!("{}", f(quick));
        let wall_s = t.elapsed().as_secs_f64();
        perf.push(SectionPerf {
            name,
            wall_s,
            work: snapshot().delta_since(&base),
        });
        eprintln!("[{name} took {wall_s:.1}s]");
    }
    // The multigroup sweep reports through the JSON summary as well as
    // text, so it runs outside the plain-text section list.
    let multigroup = if only.is_empty() || only.iter().any(|o| o == "multigroup") {
        let t = std::time::Instant::now();
        let m = e::multigroup_sweep(quick);
        println!("==================== multigroup ====================");
        println!("{}", m.text());
        eprintln!("[multigroup took {:.1}s]", t.elapsed().as_secs_f64());
        Some(m)
    } else {
        None
    };
    // The atomic multicast sweep (committed ops/s, multi-sender vs
    // single-sender) reports through the JSON summary as well as text,
    // so it runs outside the plain-text section list.
    let atomic = if only.is_empty() || only.iter().any(|o| o == "atomic") {
        let t = std::time::Instant::now();
        let a = e::atomic_sweep(quick);
        println!("==================== atomic ====================");
        println!("{}", a.text());
        eprintln!("[atomic took {:.1}s]", t.elapsed().as_secs_f64());
        Some(a)
    } else {
        None
    };
    // The lossy-WAN reliability sweep reports through the JSON summary
    // as well as text, so it runs outside the plain-text section list.
    let reliability = if only.is_empty() || only.iter().any(|o| o == "reliability") {
        let t = std::time::Instant::now();
        let r = e::reliability_sweep(quick);
        println!("==================== reliability ====================");
        println!("{}", r.text());
        eprintln!("[reliability took {:.1}s]", t.elapsed().as_secs_f64());
        Some(r)
    } else {
        None
    };
    // The datacenter-scale benchmark also reports through the JSON
    // summary, so it runs outside the plain-text section list.
    let scale = if only.is_empty() || only.iter().any(|o| o == "scale") {
        let t = std::time::Instant::now();
        let s = e::scale_benchmark(quick);
        println!("==================== scale ====================");
        println!("{}", s.text());
        eprintln!("[scale took {:.1}s]", t.elapsed().as_secs_f64());
        Some(s)
    } else {
        None
    };
    // The transport benchmark runs the same workload over real loopback
    // sockets and over the simulated fabric at a matched configuration;
    // both cells land in the JSON summary.
    let transport = if only.is_empty() || only.iter().any(|o| o == "transport") {
        let t = std::time::Instant::now();
        let r = e::transport_benchmark(quick);
        println!("==================== transport ====================");
        println!("{}", r.text());
        eprintln!("[transport took {:.1}s]", t.elapsed().as_secs_f64());
        Some(r)
    } else {
        None
    };
    // The explorer-throughput probe rides along whenever the explore
    // section is in scope; its record (executions, explored states per
    // second) lands in the JSON summary.
    let explore_bench = if only.is_empty() || only.iter().any(|o| o == "explore") {
        let x = e::explore_bench_probe(quick);
        eprintln!(
            "[explore bench: {} exhaustive vs {} dpor executions, {:.0} states/s]",
            x.exhaustive_executions, x.dpor_executions, x.states_per_sec
        );
        Some(x)
    } else {
        None
    };
    // The disabled-recorder overhead probe rides along whenever the
    // trace section is in scope; its record lands in the JSON summary.
    let trace_overhead = if only.is_empty() || only.iter().any(|o| o == "trace") {
        let t = e::trace_overhead_probe(quick);
        eprintln!(
            "[trace overhead: {} events x {:.2}ns/call disabled = {:.3}% of {:.2}s untraced run]",
            t.events, t.ns_per_disabled_call, t.overhead_pct, t.wall_disabled_s
        );
        Some(t)
    } else {
        None
    };
    if let Some(path) = &chrome_path {
        match e::write_sample_chrome_trace(path) {
            Ok(()) => eprintln!("[sample Chrome trace written to {path}]"),
            Err(err) => eprintln!("[could not write Chrome trace {path}: {err}]"),
        }
    }

    let total = t0.elapsed().as_secs_f64();
    let threads = rdmc_bench::parallel::worker_threads();
    eprintln!("[total {total:.1}s on {threads} worker threads]");

    let json = json_summary(
        quick,
        threads,
        total,
        &perf,
        trace_overhead.as_ref(),
        multigroup.as_ref(),
        atomic.as_ref(),
        reliability.as_ref(),
        scale.as_ref(),
        transport.as_ref(),
        explore_bench.as_ref(),
    );
    let path = std::env::var("RDMC_BENCH_JSON").unwrap_or_else(|_| "BENCH_simnet.json".to_owned());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[kernel perf summary written to {path}]"),
        Err(err) => eprintln!("[could not write {path}: {err}]"),
    }

    if let (Some(path), Some(s)) = (baseline_path, scale.as_ref()) {
        if !check_scale_baseline(&path, s) {
            std::process::exit(1);
        }
    }
}

/// Pulls the first `"key": <number>` after `anchor` out of a JSON blob —
/// enough to read our own byte-stable summary without a JSON dependency.
fn json_number_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let rest = &text[text.find(anchor)? + anchor.len()..];
    let needle = format!("\"{key}\": ");
    let rest = &rest[rest.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares this run's events/sec against the committed baseline summary
/// (`--baseline=BENCH_simnet.json`); returns false — fail the job — on a
/// more-than-20% regression in either the sharded run or the churn
/// microbench. A baseline without a `scale` section passes (first run).
fn check_scale_baseline(path: &str, s: &e::ScaleReport) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("[baseline {path} unreadable; skipping regression check]");
        return true;
    };
    let mut ok = true;
    let mut check = |label: &str, baseline: Option<f64>, current: f64| match baseline {
        Some(b) if b > 0.0 => {
            let ratio = current / b;
            let verdict = if ratio < 0.8 {
                ok = false;
                "REGRESSION"
            } else {
                "ok"
            };
            eprintln!("[baseline {label}: {current:.0}/s vs {b:.0}/s ({ratio:.2}x) {verdict}]");
        }
        _ => eprintln!("[baseline {label}: no committed figure; skipping]"),
    };
    check(
        "sharded events/sec",
        json_number_after(&text, "\"sharded\"", "events_per_sec"),
        s.sharded.events_per_sec,
    );
    check(
        "churn events/sec",
        json_number_after(&text, "\"churn\"", "scaled_events_per_sec"),
        s.churn.scaled_events_per_sec,
    );
    ok
}
