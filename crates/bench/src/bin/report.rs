//! Regenerates every table and figure of the paper's evaluation and
//! prints them as text tables. Run with `--quick` for a fast smoke pass.
//!
//! ```sh
//! cargo run --release -p rdmc-bench --bin report
//! ```

use rdmc_bench::experiments as e;

/// An experiment section: name + generator.
type Section = (&'static str, fn(bool) -> String);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = std::time::Instant::now();
    let sections: Vec<Section> = vec![
        ("fig4", e::fig4_latency),
        ("table1", e::table1_breakdown),
        ("fig5", e::fig5_step_timeline),
        ("fig6", e::fig6_block_size),
        ("fig7", e::fig7_one_byte),
        ("fig8", e::fig8_scalability),
        ("fig9", e::fig9_cosmos),
        ("fig10", e::fig10_overlap),
        ("fig11", e::fig11_interrupts),
        ("fig12", e::fig12_core_direct),
        ("robustness", e::robustness_analysis),
        ("sst", e::sst_small_messages),
    ];
    let only: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    for (name, f) in sections {
        if !only.is_empty() && !only.iter().any(|o| o == name) {
            continue;
        }
        let t = std::time::Instant::now();
        println!("==================== {name} ====================");
        println!("{}", f(quick));
        eprintln!("[{name} took {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!("[total {:.1}s]", t0.elapsed().as_secs_f64());
}
