//! Microbenchmarks of the building blocks: schedule construction, the
//! sans-IO engine's event throughput, max-min flow reallocation, and
//! workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use rdmc::schedule::GlobalSchedule;
use rdmc::Algorithm;
use simnet::{FlowNet, SimDuration, SimTime, Topology};
use workloads::CosmosTrace;

fn schedule_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    group.bench_function("binomial_pipeline_n512_k64", |b| {
        b.iter(|| GlobalSchedule::build(&Algorithm::BinomialPipeline, 512, 64))
    });
    group.bench_function("binomial_pipeline_shadow_n333_k32", |b| {
        b.iter(|| GlobalSchedule::build(&Algorithm::BinomialPipeline, 333, 32))
    });
    group.bench_function("chain_n64_k256", |b| {
        b.iter(|| GlobalSchedule::build(&Algorithm::Chain, 64, 256))
    });
    group.bench_function("validate_n128_k32", |b| {
        let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, 128, 32);
        b.iter(|| g.validate().unwrap())
    });
    group.finish();
}

fn engine_throughput(c: &mut Criterion) {
    use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
    use rdmc::schedule::SchedulePlanner;
    use std::collections::VecDeque;
    use std::sync::Arc;

    // A full in-memory multicast: n engines, perfect wire — measures pure
    // protocol overhead per block transfer.
    fn run_multicast(n: u32, blocks: u64) -> u64 {
        let planner = Arc::new(SchedulePlanner::new(Algorithm::BinomialPipeline));
        let mut engines = Vec::new();
        let mut queue: VecDeque<(u32, Event)> = VecDeque::new();
        for rank in 0..n {
            let (engine, actions) = GroupEngine::new(EngineConfig {
                rank,
                num_nodes: n,
                block_size: 1 << 20,
                ready_window: 3,
                max_outstanding_sends: 3,
                planner: Arc::clone(&planner),
            });
            for a in actions {
                if let Action::SendReady { to } = a {
                    queue.push_back((to, Event::ReadyReceived { from: rank }));
                }
            }
            engines.push(engine);
        }
        queue.push_front((0, Event::StartSend { size: blocks << 20 }));
        let mut delivered = 0u64;
        while let Some((rank, event)) = queue.pop_front() {
            let actions = engines[rank as usize].handle(event).expect("engine ok");
            for a in actions {
                match a {
                    Action::SendReady { to } => {
                        queue.push_back((to, Event::ReadyReceived { from: rank }))
                    }
                    Action::SendBlock { to, total_size, .. } => {
                        queue.push_back((
                            to,
                            Event::BlockReceived {
                                from: rank,
                                total_size,
                            },
                        ));
                        queue.push_back((rank, Event::SendCompleted { to }));
                    }
                    Action::DeliverMessage { .. } => delivered += 1,
                    _ => {}
                }
            }
        }
        delivered
    }

    let mut group = c.benchmark_group("engine");
    group.bench_function("multicast_n16_k64_in_memory", |b| {
        b.iter(|| {
            let d = run_multicast(16, 64);
            assert_eq!(d, 16);
            d
        })
    });
    group.finish();
}

fn flownet_reallocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("flownet");
    group.bench_function("start_complete_64_flows", |b| {
        b.iter(|| {
            let mut net = FlowNet::new();
            let topo = Topology::flat(&mut net, 64, 100.0, SimDuration::from_micros(2));
            let mut flows = Vec::new();
            for i in 0..32 {
                flows.push(net.start_flow(SimTime::ZERO, topo.path(i, 63 - i), 1_000_000.0));
            }
            while let Some((t, f)) = net.next_completion() {
                net.complete_flow(t, f);
            }
            flows.len()
        })
    });
    // Churn over a shared bottleneck: 31 long-lived flows converge on one
    // sink (a TOR-ish hot link), while 512 short transfers between other
    // nodes arrive and drain. Each arrival/completion only perturbs the
    // flows sharing a link with it, so this measures how well
    // reallocation cost tracks the ripple set rather than the whole
    // network.
    group.bench_function("churn_512_short_flows_vs_31_long", |b| {
        b.iter(|| {
            let mut net = FlowNet::new();
            let topo = Topology::flat(&mut net, 64, 100.0, SimDuration::from_micros(2));
            for i in 1..32 {
                net.start_flow(SimTime::ZERO, topo.path(i, 0), 1e9);
            }
            let mut now = SimTime::ZERO;
            let mut done = 0u32;
            for k in 0..512u64 {
                now += SimDuration::from_micros(5);
                let (a, b2) = (32 + (k as usize % 16), 48 + (k as usize % 16));
                net.start_flow(now, topo.path(a, b2), 64_000.0);
                // Keep the population bounded: retire the next finisher.
                if let Some((t, f)) = net.next_completion() {
                    if t <= now {
                        net.complete_flow(t, f);
                        done += 1;
                    }
                }
            }
            while let Some((t, f)) = net.next_completion() {
                net.complete_flow(t, f);
                done += 1;
            }
            assert_eq!(done, 512 + 31);
            done
        })
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.bench_function("cosmos_trace_10k_writes", |b| {
        b.iter(|| CosmosTrace::default().generate(10_000).len())
    });
    group.finish();
}

criterion_group!(
    micro,
    schedule_construction,
    engine_throughput,
    flownet_reallocation,
    workload_generation
);
criterion_main!(micro);
