//! Criterion benches, one group per table/figure of the paper. Each
//! prints its reproduced (quick) table once, then times a representative
//! configuration so regressions in the simulation or protocol stack are
//! caught. The full-resolution tables come from
//! `cargo run --release -p rdmc-bench --bin report`.

use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use rdmc::Algorithm;
use rdmc_bench::experiments as e;
use rdmc_bench::MB;
use rdmc_sim::{run_offloaded_chain, run_single_multicast, ClusterSpec};

fn print_once(name: &str, table: &str, done: &AtomicBool) {
    if !done.swap(true, Ordering::Relaxed) {
        println!("\n===== {name} (quick reproduction) =====\n{table}");
    }
}

macro_rules! figure_bench {
    ($fn_name:ident, $name:literal, $table_fn:path, $work:expr) => {
        fn $fn_name(c: &mut Criterion) {
            static PRINTED: AtomicBool = AtomicBool::new(false);
            print_once($name, &$table_fn(true), &PRINTED);
            let mut group = c.benchmark_group($name);
            group.sample_size(10);
            group.bench_function("representative", |b| b.iter(|| $work));
            group.finish();
        }
    };
}

figure_bench!(fig4, "fig4_latency", e::fig4_latency, {
    run_single_multicast(
        &ClusterSpec::fractus(16),
        8,
        Algorithm::BinomialPipeline,
        8 * MB,
        MB,
    )
    .latency
});

figure_bench!(table1, "table1_breakdown", e::table1_breakdown, {
    e::table1_breakdown(true).len()
});

figure_bench!(fig5, "fig5_step_timeline", e::fig5_step_timeline, {
    e::fig5_step_timeline(true).len()
});

figure_bench!(fig6, "fig6_block_size", e::fig6_block_size, {
    run_single_multicast(
        &ClusterSpec::fractus(4),
        4,
        Algorithm::BinomialPipeline,
        8 * MB,
        256 << 10,
    )
    .bandwidth_gbps
});

figure_bench!(fig7, "fig7_one_byte", e::fig7_one_byte, {
    run_single_multicast(
        &ClusterSpec::fractus(4),
        4,
        Algorithm::BinomialPipeline,
        1,
        MB,
    )
    .latency
});

figure_bench!(fig8, "fig8_scalability", e::fig8_scalability, {
    run_single_multicast(
        &ClusterSpec::sierra(64),
        64,
        Algorithm::BinomialPipeline,
        64 * MB,
        4 * MB,
    )
    .latency
});

figure_bench!(fig9, "fig9_cosmos", e::fig9_cosmos, {
    e::fig9_cosmos(true).len()
});

figure_bench!(fig10, "fig10_overlap", e::fig10_overlap, {
    rdmc_sim::run_concurrent_overlapping(
        &ClusterSpec::fractus(8),
        8,
        8,
        Algorithm::BinomialPipeline,
        4 * MB,
        1,
        MB,
    )
});

figure_bench!(fig11, "fig11_interrupts", e::fig11_interrupts, {
    e::fig11_interrupts(true).len()
});

figure_bench!(fig12, "fig12_core_direct", e::fig12_core_direct, {
    run_offloaded_chain(ClusterSpec::fractus(8).build(), &[0, 1, 2, 3], 16 * MB, MB)
});

figure_bench!(robustness, "analysis_robustness", e::robustness_analysis, {
    e::robustness_analysis(true).len()
});

figure_bench!(sst_bench, "sst_small_messages", e::sst_small_messages, {
    sst::small_message_rate(8, 1024, 50, 16)
});

criterion_group!(
    figures, fig4, table1, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, robustness, sst_bench
);
criterion_main!(figures);
