//! Mutation tests: corrupt known-good schedules in targeted ways and
//! assert the analyzer catches each defect with the right violation kind
//! and a minimal counterexample trace. These are the analyzer's own
//! tier-1 tests — a checker that accepts broken schedules is worse than
//! no checker.

use analyzer::model::check_schedule_with;
use analyzer::{check_schedule, lint_schedule, PortBudget, StepBound, Violation};
use rdmc::schedule::{GlobalSchedule, GlobalTransfer};
use rdmc::Algorithm;

/// Clones a built schedule's steps so a test can corrupt them and rebuild
/// through the public custom-schedule constructor.
fn steps_of(g: &GlobalSchedule) -> Vec<Vec<GlobalTransfer>> {
    (0..g.num_steps()).map(|j| g.step(j).to_vec()).collect()
}

fn rebuild(name: &str, g: &GlobalSchedule, steps: Vec<Vec<GlobalTransfer>>) -> GlobalSchedule {
    GlobalSchedule::from_custom_steps(name, g.num_nodes(), g.num_blocks(), steps)
}

#[test]
fn dropped_transfer_is_a_coverage_hole() {
    let good = GlobalSchedule::build(&Algorithm::Chain, 5, 3);
    let mut steps = steps_of(&good);
    // Drop the last hop of block 2: rank 4 never receives it.
    let victim = steps
        .iter_mut()
        .flat_map(|s| s.iter_mut())
        .find(|t| t.to == 4 && t.block == 2)
        .copied()
        .expect("chain delivers every block to the tail");
    for s in &mut steps {
        s.retain(|t| *t != victim);
    }
    let r = check_schedule(&rebuild("chain-dropped", &good, steps));
    assert!(
        r.violations
            .iter()
            .any(|v| matches!(v, Violation::MissingBlock { rank: 4, block: 2 })),
        "expected a MissingBlock violation, got: {r}"
    );
}

#[test]
fn self_send_is_flagged_with_its_transfer() {
    let good = GlobalSchedule::build(&Algorithm::BinomialTree, 4, 1);
    let mut steps = steps_of(&good);
    steps[0].push(GlobalTransfer {
        from: 2,
        to: 2,
        block: 0,
    });
    let r = check_schedule(&rebuild("tree-self-send", &good, steps));
    let found = r.violations.iter().any(
        |v| matches!(v, Violation::SelfSend { transfer } if transfer.from == 2 && transfer.to == 2),
    );
    assert!(found, "expected a SelfSend violation, got: {r}");
}

#[test]
fn premature_relay_yields_causality_violation_with_provenance() {
    // Chain 0 -> 1 -> 2 -> 3, one block; swap the middle two hops so
    // rank 2 relays the block one step before receiving it.
    let good = GlobalSchedule::build(&Algorithm::Chain, 4, 1);
    let mut steps = steps_of(&good);
    steps.swap(1, 2);
    let r = check_schedule(&rebuild("chain-swapped", &good, steps));
    let causality = r
        .violations
        .iter()
        .find_map(|v| match v {
            Violation::SendWithoutBlock {
                transfer,
                provenance,
            } => Some((transfer, provenance)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected a SendWithoutBlock violation, got: {r}"));
    let (transfer, provenance) = causality;
    assert_eq!(transfer.from, 2);
    assert_eq!(transfer.to, 3);
    // The minimal counterexample trace is the backward causal slice of
    // rank 2's copy: it ends at the hole, before the late 1 -> 2 hop.
    assert!(
        provenance.iter().all(|p| p.step < transfer.step),
        "provenance must only contain earlier deliveries: {r}"
    );
}

#[test]
fn duplicate_delivery_names_both_transfers() {
    let good = GlobalSchedule::build(&Algorithm::Chain, 3, 2);
    let mut steps = steps_of(&good);
    // Re-deliver block 0 to rank 1 at the last step.
    let last = steps.len() - 1;
    steps[last].push(GlobalTransfer {
        from: 0,
        to: 1,
        block: 0,
    });
    let r = check_schedule(&rebuild("chain-duplicated", &good, steps));
    let found = r.violations.iter().any(|v| {
        matches!(
            v,
            Violation::DuplicateDelivery { transfer, first }
                if transfer.to == 1 && transfer.block == 0 && first.step < transfer.step
        )
    });
    assert!(found, "expected a DuplicateDelivery violation, got: {r}");
}

#[test]
fn overloaded_step_is_a_port_conflict_with_minimal_witness() {
    // Rank 0 sends both blocks in the same step: two sends against a
    // budget of one. The witness must contain exactly budget + 1
    // transfers — the smallest set demonstrating the conflict.
    let steps = vec![
        vec![
            GlobalTransfer {
                from: 0,
                to: 1,
                block: 0,
            },
            GlobalTransfer {
                from: 0,
                to: 2,
                block: 1,
            },
        ],
        vec![
            GlobalTransfer {
                from: 1,
                to: 2,
                block: 0,
            },
            GlobalTransfer {
                from: 2,
                to: 1,
                block: 1,
            },
        ],
    ];
    let g = GlobalSchedule::from_custom_steps("fan-out", 3, 2, steps);
    let r = check_schedule_with(&g, PortBudget { send: 1, recv: 1 }, StepBound::Unbounded);
    let witness = r
        .violations
        .iter()
        .find_map(|v| match v {
            Violation::SendPortConflict {
                step: 0,
                rank: 0,
                transfers,
                budget: 1,
            } => Some(transfers),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected a SendPortConflict at step 0, got: {r}"));
    assert_eq!(witness.len(), 2, "minimal witness is budget + 1 transfers");
}

#[test]
fn padded_schedule_misses_the_exact_step_bound() {
    let good = GlobalSchedule::build(&Algorithm::BinomialPipeline, 8, 4);
    let mut steps = steps_of(&good);
    steps.push(Vec::new()); // one idle step too many
    let g = rebuild("pipeline-padded", &good, steps);
    let bound = StepBound::for_algorithm(&Algorithm::BinomialPipeline, 8, 4);
    let r = check_schedule_with(&g, PortBudget { send: 1, recv: 1 }, bound);
    assert!(
        r.violations.iter().any(|v| matches!(
            v,
            Violation::StepBoundViolated {
                steps: 7,
                bound: StepBound::Exact(6)
            }
        )),
        "expected a StepBoundViolated violation, got: {r}"
    );
}

#[test]
fn relay_swap_is_a_posting_order_deadlock_cycle() {
    // Two ranks hand the same block to each other: each send's receive is
    // credit-gated behind the other's arrival. The lint must report one
    // cycle whose trace is exactly the two transfers involved.
    let steps = vec![
        vec![GlobalTransfer {
            from: 0,
            to: 1,
            block: 1,
        }],
        vec![GlobalTransfer {
            from: 1,
            to: 2,
            block: 0,
        }],
        vec![GlobalTransfer {
            from: 2,
            to: 1,
            block: 0,
        }],
        vec![GlobalTransfer {
            from: 0,
            to: 2,
            block: 1,
        }],
    ];
    let g = GlobalSchedule::from_custom_steps("relay-swap", 3, 2, steps);
    let d = lint_schedule(&g, 1);
    assert!(!d.is_clean(), "the relay swap must not lint clean: {d}");
    assert_eq!(d.cycles.len(), 1, "exactly one wait-for cycle: {d}");
    assert_eq!(
        d.cycles[0].len(),
        2,
        "the minimal counterexample is the two swapped transfers: {d}"
    );
    for t in &d.cycles[0] {
        assert_eq!(t.block, 0, "the cycle is about block 0's relay: {d}");
    }
}

#[test]
fn intact_generators_lint_clean_end_to_end() {
    // The mutations above must be the *only* way to trip the analyzer:
    // the real generators stay clean under the same checks.
    for (alg, n, k) in [
        (Algorithm::Sequential, 6, 2),
        (Algorithm::Chain, 6, 3),
        (Algorithm::BinomialTree, 6, 2),
        (Algorithm::BinomialPipeline, 6, 3),
        (
            Algorithm::Hybrid {
                rack_of: vec![0, 0, 0, 1, 1, 1],
            },
            6,
            3,
        ),
        (
            Algorithm::HybridPipelined {
                rack_of: vec![0, 0, 0, 1, 1, 1],
            },
            6,
            3,
        ),
    ] {
        let g = GlobalSchedule::build(&alg, n, k);
        let m = check_schedule(&g);
        assert!(m.is_clean(), "{m}");
        let d = lint_schedule(&g, 1);
        assert!(d.is_clean(), "{d}");
        assert!(d.ungated_survivable() || d.ungated_exposed > 0);
    }
}

#[test]
fn sweep_over_a_small_grid_is_clean() {
    let report = analyzer::sweep(&analyzer::SweepConfig {
        max_n: 8,
        ks: vec![1, 2, 3],
        rack_counts: vec![2],
        ready_windows: vec![1],
        reachability: false,
        resume: true,
        explore: false, // covered by tests/explore.rs
    });
    assert!(report.is_clean(), "{report}");
    assert!(report.schedules_checked > 0);
    assert!(report.lints_run > 0);
    assert!(report.resumes_checked > 0);
}
