//! End-to-end tests of the execution explorer: exhaustive enumeration
//! stays green and tractable on the CI-tier scenarios, DPOR agrees with
//! exhaustive while running far fewer executions, and seeded ordering
//! bugs are caught with minimal, bit-for-bit-replaying counterexamples.

use analyzer::{explore_executions, replay, ExploreConfig, ExploreScenario, Strategy};
use rdmc::Algorithm;
use rdmc_sim::{Mutation, ReliabilityPolicy};

#[test]
fn exhaustive_small_binomial_is_clean() {
    // Atomic delivery multiplies same-instant status-write bursts, so
    // the atomic tier runs at n=3 and the n=4 tier runs non-atomic
    // (the §4.6 frontier invariants still get exhaustive coverage via
    // the n=3 runs and randomized n=4 coverage below).
    for (n, k, atomic) in [(3, 1, true), (3, 2, true), (4, 1, false), (4, 2, false)] {
        let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, n, k);
        scenario.atomic = atomic;
        let report = explore_executions(&ExploreConfig::exhaustive(scenario));
        assert!(report.is_clean(), "n={n} k={k}: {report}");
        assert!(
            !report.truncated,
            "n={n} k={k} hit the execution cap: {report}"
        );
        assert!(
            report.executions > 1,
            "n={n} k={k}: no interleavings explored"
        );
        assert_eq!(
            report.crash_free_digests.len(),
            1,
            "n={n} k={k}: crash-free interleavings must converge: {report}"
        );
    }
}

#[test]
fn exhaustive_covers_all_algorithms() {
    for algorithm in [
        Algorithm::Chain,
        Algorithm::Sequential,
        Algorithm::BinomialTree,
    ] {
        let scenario = ExploreScenario::small(algorithm.clone(), 3, 1);
        let report = explore_executions(&ExploreConfig::exhaustive(scenario));
        assert!(report.is_clean(), "{algorithm:?}: {report}");
        assert!(!report.truncated, "{algorithm:?}: {report}");
    }
}

#[test]
fn dpor_matches_exhaustive_with_fewer_executions() {
    let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2);
    scenario.atomic = false;
    let full = explore_executions(&ExploreConfig::exhaustive(scenario.clone()));
    let dpor = explore_executions(&ExploreConfig::dpor(scenario));
    assert!(full.is_clean(), "exhaustive: {full}");
    assert!(dpor.is_clean(), "dpor: {dpor}");
    assert!(!full.truncated && !dpor.truncated);
    // Identical verdicts: same convergent terminal state.
    assert_eq!(full.crash_free_digests, dpor.crash_free_digests);
    // The reduction prunes a meaningful share even at this tiny size
    // (the 10x criterion is checked at n=5 in the heavy test below).
    assert!(
        dpor.executions * 2 <= full.executions,
        "DPOR explored {} of {} executions — no meaningful reduction",
        dpor.executions,
        full.executions
    );
}

#[test]
#[ignore = "heavy (~10s release, minutes debug): the CI explore job runs it with --release --include-ignored"]
fn dpor_reduces_tenfold_at_n5() {
    let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 5, 2);
    scenario.atomic = false;
    let mut full_cfg = ExploreConfig::exhaustive(scenario.clone());
    full_cfg.max_executions = 100_000; // the space is ~47k executions
    let full = explore_executions(&full_cfg);
    let dpor = explore_executions(&ExploreConfig::dpor(scenario));
    assert!(full.is_clean(), "exhaustive: {full}");
    assert!(dpor.is_clean(), "dpor: {dpor}");
    assert!(!full.truncated && !dpor.truncated);
    assert_eq!(full.crash_free_digests, dpor.crash_free_digests);
    // Measured: 46_656 naive executions vs 576 under DPOR (81x).
    assert!(
        dpor.executions * 10 <= full.executions,
        "DPOR explored {} of {} executions — less than a 10x reduction",
        dpor.executions,
        full.executions
    );
}

#[test]
fn random_walk_is_clean_and_bounded() {
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2);
    let report = explore_executions(&ExploreConfig::random(scenario, 0xfeed_beef, 50));
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.executions, 50);
    assert_eq!(report.crash_free_digests.len(), 1);
}

#[test]
fn crash_exploration_survives_fault_choices() {
    // Offer crash sites for two non-root members at a couple of protocol
    // steps; every branch (including "no fault") must stay clean.
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2).with_faults(vec![
        (10, 1),
        (10, 3),
        (25, 2),
    ]);
    let report = explore_executions(&ExploreConfig::random(scenario, 0x5eed, 40));
    assert!(report.is_clean(), "{report}");
    assert!(!report.crashed_digests.is_empty(), "no fault branch taken");
    assert_eq!(report.crash_free_digests.len(), 1, "{report}");
}

#[test]
fn unsorted_teardown_mutation_is_caught_by_replay_audit() {
    // The mutation copies an epoch's queue pairs through a std HashMap
    // before teardown, so two replays of one choice sequence iterate it
    // differently — exactly the bug class the determinism audit exists
    // for. It needs a reconfiguration to trigger, hence the fault site.
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2)
        .with_faults(vec![(10, 1)])
        .with_mutation(Mutation::UnsortedQpTeardown);
    let config = ExploreConfig {
        replay_every: 1, // audit every execution
        ..ExploreConfig::random(scenario.clone(), 7, 30)
    };
    let report = explore_executions(&config);
    let cex = report
        .counterexample
        .as_ref()
        .expect("mutation must be caught");
    assert!(
        cex.violations
            .iter()
            .any(|v| v.contains("replay divergence")),
        "expected a replay-divergence violation: {report}"
    );
}

#[test]
fn lazy_recv_post_mutation_is_caught() {
    // The mutation inverts §4.2: the readiness grant is written before
    // the receive is posted, and the post is deferred to the node's next
    // event dispatch. Some interleavings let the granted send race ahead
    // of the posting — an RNR arm or a protocol panic.
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2)
        .with_mutation(Mutation::LazyRecvPost);
    let report = explore_executions(&ExploreConfig::exhaustive(scenario.clone()));
    let cex = report
        .counterexample
        .as_ref()
        .expect("mutation must be caught");

    // The counterexample replays bit-for-bit: same violations, same
    // digest, twice over.
    let a = replay(&scenario, &cex.choices);
    let b = replay(&scenario, &cex.choices);
    assert_eq!(a.violations, cex.violations);
    assert_eq!(b.violations, cex.violations);
    assert_eq!(a.digest, cex.digest);
    assert_eq!(b.digest, cex.digest);
    assert_eq!(a.trace_jsonl, cex.trace_jsonl);

    // And it is minimal: zeroing any remaining non-default choice loses
    // the violation set's reproduction.
    for i in 0..cex.choices.len() {
        if cex.choices[i] == 0 {
            continue;
        }
        let mut probe = cex.choices.clone();
        probe[i] = 0;
        let e = replay(&scenario, &probe);
        assert_ne!(
            e.violations, cex.violations,
            "choice {i} is redundant — counterexample not minimal"
        );
    }
}

#[test]
fn loss_exploration_is_clean_and_converges() {
    // The first few wire transfers become deliver-or-drop choice points;
    // selective-ack must repair every drop branch back to the same
    // terminal state (one crash-free digest), with no hangs and a clean
    // trace oracle on every interleaving.
    let mut base = ExploreScenario::small(Algorithm::BinomialPipeline, 3, 2);
    base.atomic = false;
    let lossy = base
        .clone()
        .with_loss(3, ReliabilityPolicy::selective_ack());
    let plain = explore_executions(&ExploreConfig::dpor(base));
    let report = explore_executions(&ExploreConfig::dpor(lossy));
    assert!(report.is_clean(), "{report}");
    assert!(!report.truncated, "{report}");
    assert_eq!(
        report.crash_free_digests.len(),
        1,
        "drop branches must repair to the same terminal state: {report}"
    );
    // The loss sites genuinely branched the space.
    assert!(
        report.executions > plain.executions,
        "loss sites added no executions ({} vs {})",
        report.executions,
        plain.executions
    );
}

#[test]
fn nack_off_by_one_mutation_is_caught_via_loss_exploration() {
    // The mutation shifts every NACK range one block forward, so the
    // retransmission never covers the dropped block: the retry budget
    // drains, the receiver escalates, and a healthy sender is evicted.
    // Depending on which transfer the explorer drops, that surfaces as
    // a crash-free run missing deliveries (the evicted sender's blocks
    // are unrecoverable) or as a terminal-state divergence (recovery
    // resumed, but the membership no longer matches the clean runs).
    // Only a drop branch exposes either; the loss choice points let the
    // explorer find one.
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 3, 2)
        .with_loss(2, ReliabilityPolicy::selective_ack())
        .with_mutation(Mutation::NackOffByOne);
    let report = explore_executions(&ExploreConfig::dpor(scenario.clone()));
    let cex = report
        .counterexample
        .as_ref()
        .expect("NackOffByOne must be caught");
    // The counterexample takes at least one drop branch …
    assert!(
        cex.choices.iter().any(|&c| c != 0),
        "counterexample has no non-default choice: {report}"
    );
    assert!(
        cex.violations
            .iter()
            .any(|v| v.contains("missing deliveries") || v.contains("diverged")),
        "unexpected violation kind: {report}"
    );
    // … and is genuinely behaviourally distinct from the clean default
    // interleaving: replaying it either violates outright or lands in a
    // different terminal state.
    let clean = replay(&scenario, &[]);
    assert!(clean.violations.is_empty(), "{:?}", clean.violations);
    let e = replay(&scenario, &cex.choices);
    assert!(
        !e.violations.is_empty() || e.digest != clean.digest,
        "counterexample indistinguishable from the clean run"
    );
}

#[test]
fn atomic_exploration_upholds_delivery_log_agreement() {
    // The multi-sender scenario: one full rotation of single-block
    // messages. DPOR must exhaust the 2-member reduced space cleanly —
    // every interleaving of RDMC deliveries and frontier epidemics
    // yields the identical total order at every member, and all
    // crash-free executions converge on one digest.
    let mut scenario = ExploreScenario::atomic(Algorithm::BinomialPipeline, 2, 1);
    scenario.messages = 1;
    let report = explore_executions(&ExploreConfig::dpor(scenario));
    assert!(report.is_clean(), "{report}");
    assert!(!report.truncated, "{report}");
    assert!(report.executions > 1, "space did not branch: {report}");
    assert_eq!(report.crash_free_digests.len(), 1, "{report}");

    // The 3-member space is too wide to exhaust; a seeded random walk
    // checks the same agreement invariant across 40 deep interleavings.
    let wide = ExploreScenario::atomic(Algorithm::BinomialPipeline, 3, 1);
    let walk = explore_executions(&ExploreConfig::random(wide, 0xa70_31c, 40));
    assert!(walk.is_clean(), "{walk}");
    assert_eq!(walk.crash_free_digests.len(), 1, "{walk}");
}

#[test]
fn frontier_off_by_one_mutation_is_caught_minimally() {
    // The mutation shifts the delivery gate to `stable + 1`, releasing
    // each slot one stability step early — delivery can precede local
    // receipt, which the trace oracle's atomic ordering rule flags.
    let scenario = ExploreScenario::atomic(Algorithm::BinomialPipeline, 3, 1)
        .with_mutation(Mutation::FrontierOffByOne);
    let report = explore_executions(&ExploreConfig::dpor(scenario.clone()));
    let cex = report
        .counterexample
        .as_ref()
        .expect("FrontierOffByOne must be caught");
    assert!(
        cex.violations.iter().any(|v| v.contains("trace oracle")),
        "expected an ordering-oracle violation: {report}"
    );

    // The `--replay=` counterexample reproduces bit-for-bit.
    let a = replay(&scenario, &cex.choices);
    let b = replay(&scenario, &cex.choices);
    assert_eq!(a.violations, cex.violations);
    assert_eq!(b.violations, cex.violations);
    assert_eq!(a.digest, cex.digest);
    assert_eq!(a.trace_jsonl, cex.trace_jsonl);

    // And it is minimal: zeroing any remaining non-default choice loses
    // the exact violation set.
    for i in 0..cex.choices.len() {
        if cex.choices[i] == 0 {
            continue;
        }
        let mut probe = cex.choices.clone();
        probe[i] = 0;
        let e = replay(&scenario, &probe);
        assert_ne!(
            e.violations, cex.violations,
            "choice {i} is redundant — counterexample not minimal"
        );
    }
}

#[test]
fn default_interleaving_replays_the_uncontrolled_run() {
    // An all-defaults script must be clean and produce the canonical
    // digest for the scenario.
    let scenario = ExploreScenario::small(Algorithm::BinomialPipeline, 4, 2);
    let e = replay(&scenario, &[]);
    assert!(e.violations.is_empty(), "{:?}", e.violations);
    assert!(!e.points.is_empty(), "no choice points encountered");
    assert!(e.points.iter().all(|p| p.chosen == 0));
}

#[test]
fn strategies_agree_on_the_terminal_digest() {
    let scenario = ExploreScenario::small(Algorithm::Chain, 4, 1);
    let full = explore_executions(&ExploreConfig::exhaustive(scenario.clone()));
    let dpor = explore_executions(&ExploreConfig::dpor(scenario.clone()));
    let walk = explore_executions(&ExploreConfig::random(scenario, 3, 20));
    assert!(full.is_clean() && dpor.is_clean() && walk.is_clean());
    assert_eq!(full.crash_free_digests, dpor.crash_free_digests);
    assert_eq!(full.crash_free_digests, walk.crash_free_digests);
    let _ = Strategy::Exhaustive; // silence unused-import pedantry if variants change
}
