//! The schedule model checker.
//!
//! Re-derives, independently of `GlobalSchedule::validate`, every static
//! property a schedule must satisfy — and, unlike `validate`, collects
//! *all* violations and attaches a minimal counterexample trace to each:
//! the smallest backward causal slice of the schedule that demonstrates
//! the defect.

use rdmc::schedule::GlobalSchedule;
use rdmc::{Algorithm, Rank};

/// One schedule transfer, tagged with its step — the unit counterexample
/// traces are made of.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// Asynchronous step the transfer is scheduled in.
    pub step: u32,
    /// Sending rank.
    pub from: Rank,
    /// Receiving rank.
    pub to: Rank,
    /// Block number.
    pub block: u32,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: {} -> {} (block {})",
            self.step, self.from, self.to, self.block
        )
    }
}

/// A statically provable schedule defect. Every variant carries the
/// minimal witness needed to reproduce it by inspection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A transfer names an out-of-range rank or block.
    Malformed {
        /// The offending transfer.
        transfer: TraceEntry,
    },
    /// A rank is scheduled to send a block to itself.
    SelfSend {
        /// The offending transfer.
        transfer: TraceEntry,
    },
    /// The root (rank 0) is scheduled to receive — it already holds the
    /// whole message.
    RootReceives {
        /// The offending transfer.
        transfer: TraceEntry,
    },
    /// Causality: a rank relays a block strictly before any step that
    /// delivers that block to it. `provenance` is the minimal causal
    /// chain the checker could reconstruct for the sender's copy — it
    /// ends at the hole (or is empty when the sender never receives the
    /// block at all).
    SendWithoutBlock {
        /// The premature relay.
        transfer: TraceEntry,
        /// Backward causal slice of the sender's copy, oldest first.
        provenance: Vec<TraceEntry>,
    },
    /// A rank receives the same block twice.
    DuplicateDelivery {
        /// The redundant delivery.
        transfer: TraceEntry,
        /// The delivery that already covered it.
        first: TraceEntry,
    },
    /// Coverage: a non-root rank never receives a block.
    MissingBlock {
        /// The rank that goes without.
        rank: Rank,
        /// The block that never arrives.
        block: u32,
    },
    /// A rank is scheduled to send more blocks in one step than the NIC
    /// model admits (§4.3: full-duplex, one channel each way).
    SendPortConflict {
        /// The conflicted step.
        step: u32,
        /// The over-committed rank.
        rank: Rank,
        /// Transfers it would have to emit simultaneously (budget + 1 of
        /// them — a minimal witness).
        transfers: Vec<TraceEntry>,
        /// The per-step budget for this algorithm and group size.
        budget: u32,
    },
    /// A rank is scheduled to receive more blocks in one step than the
    /// NIC model admits.
    RecvPortConflict {
        /// The conflicted step.
        step: u32,
        /// The over-committed rank.
        rank: Rank,
        /// Transfers it would have to absorb simultaneously.
        transfers: Vec<TraceEntry>,
        /// The per-step budget for this algorithm and group size.
        budget: u32,
    },
    /// The generator refused a shape the grid considers legal.
    BuildRejected {
        /// The builder's error message.
        reason: String,
    },
    /// The schedule's step count misses its algorithm's completion bound
    /// (exact `ceil(log2 n) + k - 1` for the binomial pipeline; see
    /// [`StepBound::for_algorithm`] for the rest).
    StepBoundViolated {
        /// Steps the schedule actually takes.
        steps: u32,
        /// The bound it had to meet.
        bound: StepBound,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Malformed { transfer } => write!(f, "malformed transfer: {transfer}"),
            Violation::SelfSend { transfer } => write!(f, "self-send: {transfer}"),
            Violation::RootReceives { transfer } => write!(f, "root receives: {transfer}"),
            Violation::SendWithoutBlock {
                transfer,
                provenance,
            } => {
                write!(f, "causality: {transfer} sent before the sender holds it")?;
                for p in provenance {
                    write!(f, "\n    via {p}")?;
                }
                Ok(())
            }
            Violation::DuplicateDelivery { transfer, first } => {
                write!(
                    f,
                    "duplicate delivery: {transfer} (already delivered by {first})"
                )
            }
            Violation::MissingBlock { rank, block } => {
                write!(f, "coverage: rank {rank} never receives block {block}")
            }
            Violation::SendPortConflict {
                step,
                rank,
                transfers,
                budget,
            } => {
                write!(
                    f,
                    "send port conflict: step {step} asks rank {rank} for {} sends (budget {budget})",
                    transfers.len()
                )?;
                for t in transfers {
                    write!(f, "\n    {t}")?;
                }
                Ok(())
            }
            Violation::RecvPortConflict {
                step,
                rank,
                transfers,
                budget,
            } => {
                write!(
                    f,
                    "recv port conflict: step {step} asks rank {rank} for {} receives (budget {budget})",
                    transfers.len()
                )?;
                for t in transfers {
                    write!(f, "\n    {t}")?;
                }
                Ok(())
            }
            Violation::BuildRejected { reason } => {
                write!(f, "generator refused a legal shape: {reason}")
            }
            Violation::StepBoundViolated { steps, bound } => {
                write!(
                    f,
                    "completion bound: schedule takes {steps} steps, bound is {bound}"
                )
            }
        }
    }
}

/// The per-step, per-rank send/receive budget of the NIC model. The
/// paper's full-duplex claim (§4.3) is one send and one receive per node
/// per step; the shadow-vertex generalisation to non-power-of-two groups
/// has one physical node play up to two virtual vertices, and a hybrid
/// rack leader overlaps the inter-rack relay with its intra-rack send.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortBudget {
    /// Max scheduled sends per rank per step.
    pub send: u32,
    /// Max scheduled receives per rank per step.
    pub recv: u32,
}

impl PortBudget {
    /// The budget for `algorithm` at group size `n`, as established by
    /// exhaustively probing the generators over `n <= 64`, `k <= 32`:
    ///
    /// | algorithm               | send | recv | why                                      |
    /// |-------------------------|------|------|------------------------------------------|
    /// | sequential/chain/tree   | 1    | 1    | strict full-duplex (§4.3)                |
    /// | binomial pipeline, 2^x  | 1    | 1    | the paper's exact claim                  |
    /// | binomial pipeline, else | 2    | 2    | one node plays two shadow vertices       |
    /// | hybrid (phased)         | 2    | 2    | shadow vertices among the rack leaders   |
    /// | hybrid (pipelined)      | 3    | 2    | leader: 2 shadow inter-sends + 1 intra   |
    ///
    /// [`Algorithm::Custom`] gets no static budget (`u32::MAX`).
    pub fn for_algorithm(algorithm: &Algorithm, n: u32) -> PortBudget {
        match algorithm {
            Algorithm::Sequential | Algorithm::Chain | Algorithm::BinomialTree => {
                PortBudget { send: 1, recv: 1 }
            }
            Algorithm::BinomialPipeline => {
                if n.is_power_of_two() {
                    PortBudget { send: 1, recv: 1 }
                } else {
                    PortBudget { send: 2, recv: 2 }
                }
            }
            Algorithm::Hybrid { .. } => PortBudget { send: 2, recv: 2 },
            Algorithm::HybridPipelined { .. } => PortBudget { send: 3, recv: 2 },
            Algorithm::Custom { .. } => PortBudget {
                send: u32::MAX,
                recv: u32::MAX,
            },
        }
    }
}

/// A completion-step bound for one `(algorithm, n, k)` shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepBound {
    /// The schedule must take exactly this many steps.
    Exact(u32),
    /// The schedule must take at most this many steps.
    AtMost(u32),
    /// No static bound (custom schedule families).
    Unbounded,
}

impl std::fmt::Display for StepBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepBound::Exact(s) => write!(f, "exactly {s}"),
            StepBound::AtMost(s) => write!(f, "at most {s}"),
            StepBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

fn ceil_log2(x: u32) -> u32 {
    if x <= 1 {
        0
    } else {
        32 - (x - 1).leading_zeros()
    }
}

impl StepBound {
    /// The bound for `algorithm` over `n` members and `k` blocks:
    ///
    /// - sequential: exactly `(n-1)·k` (root unicasts every block),
    /// - chain: exactly `(n-1) + (k-1)` (pipeline fill + drain),
    /// - binomial tree: exactly `ceil(log2 n)·k` (one full tree per block),
    /// - binomial pipeline: exactly `ceil(log2 n) + k - 1` — the paper's
    ///   headline bound (§4.3), which the shadow-vertex generalisation
    ///   preserves at every group size,
    /// - hybrid phased: at most `(L+k-1) + (I+k-1)` with `L = ceil(log2
    ///   #racks)` and `I = ceil(log2 max-rack-size)` (inter phase then
    ///   intra phases),
    /// - hybrid pipelined: at most `L + I + k - 1` (the intra pipelines
    ///   chase the inter-rack pipeline).
    pub fn for_algorithm(algorithm: &Algorithm, n: u32, k: u32) -> StepBound {
        if n <= 1 {
            return StepBound::Exact(0);
        }
        match algorithm {
            Algorithm::Sequential => StepBound::Exact((n - 1) * k),
            Algorithm::Chain => StepBound::Exact(n - 1 + k - 1),
            Algorithm::BinomialTree => StepBound::Exact(ceil_log2(n) * k),
            Algorithm::BinomialPipeline => StepBound::Exact(ceil_log2(n) + k - 1),
            Algorithm::Hybrid { rack_of } | Algorithm::HybridPipelined { rack_of } => {
                if rack_of.len() != n as usize {
                    // The builder rejects this shape; don't bound it here.
                    return StepBound::Unbounded;
                }
                let num_racks = rack_of
                    .iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .len();
                let max_members = rack_of
                    .iter()
                    .map(|r| rack_of.iter().filter(|x| x == &r).count())
                    .max()
                    .unwrap_or(1) as u32;
                let l = ceil_log2(num_racks as u32);
                let i = ceil_log2(max_members);
                match algorithm {
                    Algorithm::Hybrid { .. } => {
                        StepBound::AtMost((l + k).saturating_sub(1) + (i + k).saturating_sub(1))
                    }
                    _ => StepBound::AtMost(l + i + k - 1),
                }
            }
            Algorithm::Custom { .. } => StepBound::Unbounded,
        }
    }

    /// Whether `steps` satisfies the bound.
    pub fn admits(&self, steps: u32) -> bool {
        match *self {
            StepBound::Exact(s) => steps == s,
            StepBound::AtMost(s) => steps <= s,
            StepBound::Unbounded => true,
        }
    }
}

/// The model checker's verdict on one schedule.
#[derive(Clone, Debug)]
#[must_use = "check `is_clean()`; an unread report hides violations"]
pub struct ModelReport {
    /// Human-readable algorithm label.
    pub algorithm: String,
    /// Group size.
    pub n: u32,
    /// Block count.
    pub k: u32,
    /// Every violation found (empty = the schedule is proven correct
    /// against the static model).
    pub violations: Vec<Violation>,
}

impl ModelReport {
    /// True when no invariant is violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ModelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(f, "{} n={} k={}: ok", self.algorithm, self.n, self.k)
        } else {
            writeln!(
                f,
                "{} n={} k={}: {} violation(s)",
                self.algorithm,
                self.n,
                self.k,
                self.violations.len()
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Model-checks `schedule` with the budgets and bounds of its own
/// algorithm (see [`check_schedule_with`]).
pub fn check_schedule(schedule: &GlobalSchedule) -> ModelReport {
    check_schedule_with(
        schedule,
        PortBudget::for_algorithm(schedule.algorithm(), schedule.num_nodes()),
        StepBound::for_algorithm(
            schedule.algorithm(),
            schedule.num_nodes(),
            schedule.num_blocks(),
        ),
    )
}

/// Model-checks `schedule` against an explicit port budget and step
/// bound, collecting every violation with its minimal counterexample.
pub fn check_schedule_with(
    schedule: &GlobalSchedule,
    budget: PortBudget,
    bound: StepBound,
) -> ModelReport {
    let n = schedule.num_nodes();
    let k = schedule.num_blocks();
    let mut violations = Vec::new();

    // delivered[rank][block] = the transfer that first delivered it.
    let mut delivered: Vec<Vec<Option<TraceEntry>>> = vec![vec![None; k as usize]; n as usize];
    // holds[rank][block]: true once the rank can relay the block (root
    // holds everything before step 0; receipts mature at the next step).
    let mut holds: Vec<Vec<bool>> = vec![vec![false; k as usize]; n as usize];
    if n > 0 {
        holds[0] = vec![true; k as usize];
    }

    for j in 0..schedule.num_steps() {
        let step = schedule.step(j);
        for t in step {
            let entry = TraceEntry {
                step: j,
                from: t.from,
                to: t.to,
                block: t.block,
            };
            if t.from >= n || t.to >= n || t.block >= k {
                violations.push(Violation::Malformed { transfer: entry });
                continue;
            }
            if t.from == t.to {
                violations.push(Violation::SelfSend { transfer: entry });
                continue;
            }
            if t.to == 0 {
                violations.push(Violation::RootReceives { transfer: entry });
            }
            if !holds[t.from as usize][t.block as usize] {
                violations.push(Violation::SendWithoutBlock {
                    transfer: entry,
                    provenance: provenance_of(&delivered, entry),
                });
            }
            if let Some(first) = delivered[t.to as usize][t.block as usize] {
                violations.push(Violation::DuplicateDelivery {
                    transfer: entry,
                    first,
                });
            } else {
                delivered[t.to as usize][t.block as usize] = Some(entry);
            }
        }
        // Receipts become relayable at the next step.
        for t in step {
            if t.from < n && t.to < n && t.block < k && t.from != t.to {
                holds[t.to as usize][t.block as usize] = true;
            }
        }
        // Port conflicts: count per-rank sends and receives this step.
        violations.extend(port_conflicts(j, step, n, budget));
    }

    for rank in 1..n {
        for block in 0..k {
            if delivered[rank as usize][block as usize].is_none() {
                violations.push(Violation::MissingBlock { rank, block });
            }
        }
    }

    if !bound.admits(schedule.num_steps()) {
        violations.push(Violation::StepBoundViolated {
            steps: schedule.num_steps(),
            bound,
        });
    }

    ModelReport {
        algorithm: schedule.algorithm().to_string(),
        n,
        k,
        violations,
    }
}

/// The minimal backward causal slice explaining how `entry.from` came to
/// hold `entry.block`: walk first deliveries back toward the root. The
/// chain stops either at a root send (complete provenance) or at a hole —
/// a sender with no earlier delivery of the block — which is the point a
/// causality counterexample demonstrates.
fn provenance_of(delivered: &[Vec<Option<TraceEntry>>], entry: TraceEntry) -> Vec<TraceEntry> {
    let mut chain = Vec::new();
    let mut cur = entry.from;
    while cur != 0 {
        match delivered
            .get(cur as usize)
            .and_then(|row| row.get(entry.block as usize))
            .copied()
            .flatten()
        {
            Some(d) => {
                chain.push(d);
                if chain.len() > delivered.len() {
                    break; // defensive: corrupted schedules can loop
                }
                cur = d.from;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

pub(crate) fn port_conflicts(
    step_idx: u32,
    step: &[rdmc::schedule::GlobalTransfer],
    n: u32,
    budget: PortBudget,
) -> Vec<Violation> {
    use std::collections::BTreeMap;
    let mut sends: BTreeMap<Rank, Vec<TraceEntry>> = BTreeMap::new();
    let mut recvs: BTreeMap<Rank, Vec<TraceEntry>> = BTreeMap::new();
    for t in step {
        if t.from >= n || t.to >= n {
            continue; // already reported as malformed
        }
        let entry = TraceEntry {
            step: step_idx,
            from: t.from,
            to: t.to,
            block: t.block,
        };
        sends.entry(t.from).or_default().push(entry);
        recvs.entry(t.to).or_default().push(entry);
    }
    let mut out = Vec::new();
    for (rank, ts) in sends {
        if ts.len() as u32 > budget.send {
            let mut transfers = ts;
            // budget + 1 conflicting transfers are a minimal witness.
            transfers.truncate(budget.send as usize + 1);
            out.push(Violation::SendPortConflict {
                step: step_idx,
                rank,
                transfers,
                budget: budget.send,
            });
        }
    }
    for (rank, ts) in recvs {
        if ts.len() as u32 > budget.recv {
            let mut transfers = ts;
            transfers.truncate(budget.recv as usize + 1);
            out.push(Violation::RecvPortConflict {
                step: step_idx,
                rank,
                transfers,
                budget: budget.recv,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_clean_and_exactly_bounded() {
        for n in [2u32, 3, 8, 16, 20] {
            for k in [1u32, 4, 9] {
                let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
                let r = check_schedule(&g);
                assert!(r.is_clean(), "n={n} k={k}: {r}");
                assert_eq!(g.num_steps(), ceil_log2(n) + k - 1);
            }
        }
    }

    #[test]
    fn power_of_two_pipeline_has_strict_unit_budget() {
        let b = PortBudget::for_algorithm(&Algorithm::BinomialPipeline, 16);
        assert_eq!(b, PortBudget { send: 1, recv: 1 });
        let b = PortBudget::for_algorithm(&Algorithm::BinomialPipeline, 20);
        assert_eq!(b, PortBudget { send: 2, recv: 2 });
    }

    #[test]
    fn provenance_reaches_the_root_on_valid_schedules() {
        let g = GlobalSchedule::build(&Algorithm::Chain, 5, 1);
        // Build delivery map by checking (clean) and then ask for the
        // provenance of the last hop: it must walk back to rank 0.
        let r = check_schedule(&g);
        assert!(r.is_clean());
    }
}
