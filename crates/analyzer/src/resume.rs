//! Model checking for *resume* schedules — the recovery planner's output.
//!
//! A resume schedule differs from a fresh multicast in exactly one
//! respect: block possession does not start concentrated at the root, it
//! starts wherever the wedge left it. That changes what "correct" means:
//!
//! - **Exact missing-block coverage**: every survivor must receive every
//!   block it *lacks* — and none it already holds. Retransmitting a held
//!   block is a violation here (the whole point of block-wise resume is
//!   that only missing blocks move), where the fresh-schedule checker
//!   would merely call it a duplicate.
//! - **Causality from the initial holdings**: a rank may relay a block
//!   only if it held it at the wedge or received it in a strictly
//!   earlier step.
//! - **Port budgets**: one send and one receive per rank per step —
//!   resume schedules are custom-built, so they get no shadow-vertex
//!   allowance unless the caller grants one.
//! - **Survivors only**: every rank named by the schedule must be a
//!   new-epoch (survivor) rank. An out-of-range rank is a send to a
//!   failed member by construction, since survivors are renumbered
//!   densely from zero.
//!
//! Violations reuse the [`model`](crate::model) vocabulary so sweep
//! reports read uniformly; [`check_resume_schedule`] is the entry point
//! and [`crate::sweep()`] drives it over binomial pipelines cut at every
//! step with every failure pattern.

use rdmc::schedule::GlobalSchedule;

use crate::model::{ModelReport, PortBudget, TraceEntry, Violation};

/// Model-checks a resume schedule against the survivors' wedge-time
/// holdings (`holdings[r][b]` = new-epoch rank `r` held block `b` when
/// the group wedged), under a strict one-send-one-receive budget.
pub fn check_resume_schedule(schedule: &GlobalSchedule, holdings: &[Vec<bool>]) -> ModelReport {
    check_resume_schedule_with(schedule, holdings, PortBudget { send: 1, recv: 1 })
}

/// [`check_resume_schedule`] with an explicit port budget.
///
/// # Panics
///
/// Panics if `holdings` does not match the schedule's shape (one bitmap
/// per rank, one bit per block) — that is a harness bug, not a schedule
/// defect.
pub fn check_resume_schedule_with(
    schedule: &GlobalSchedule,
    holdings: &[Vec<bool>],
    budget: PortBudget,
) -> ModelReport {
    let n = schedule.num_nodes();
    let k = schedule.num_blocks();
    assert_eq!(holdings.len(), n as usize, "one bitmap per survivor");
    assert!(
        holdings.iter().all(|h| h.len() == k as usize),
        "one bit per block"
    );
    let mut violations = Vec::new();

    // delivered[rank][block] = the transfer that delivered it in THIS
    // schedule (initial holdings are not deliveries).
    let mut delivered: Vec<Vec<Option<TraceEntry>>> = vec![vec![None; k as usize]; n as usize];
    // holds[rank][block]: relayable now — wedge-time holdings up front,
    // receipts maturing at the next step.
    let mut holds: Vec<Vec<bool>> = holdings.to_vec();

    for j in 0..schedule.num_steps() {
        let step = schedule.step(j);
        for t in step {
            let entry = TraceEntry {
                step: j,
                from: t.from,
                to: t.to,
                block: t.block,
            };
            if t.from >= n || t.to >= n || t.block >= k {
                // Survivors are renumbered densely, so any out-of-range
                // rank is a transfer touching a failed member.
                violations.push(Violation::Malformed { transfer: entry });
                continue;
            }
            if t.from == t.to {
                violations.push(Violation::SelfSend { transfer: entry });
                continue;
            }
            if !holds[t.from as usize][t.block as usize] {
                violations.push(Violation::SendWithoutBlock {
                    transfer: entry,
                    provenance: Vec::new(), // provenance roots at holdings, not rank 0
                });
            }
            // "Exactly the missing blocks": receiving a block the rank
            // held at the wedge is as redundant as receiving one twice.
            if holdings[t.to as usize][t.block as usize] {
                violations.push(Violation::DuplicateDelivery {
                    transfer: entry,
                    first: entry, // held since the wedge; no delivering transfer exists
                });
            } else if let Some(first) = delivered[t.to as usize][t.block as usize] {
                violations.push(Violation::DuplicateDelivery {
                    transfer: entry,
                    first,
                });
            } else {
                delivered[t.to as usize][t.block as usize] = Some(entry);
            }
        }
        for t in step {
            if t.from < n && t.to < n && t.block < k && t.from != t.to {
                holds[t.to as usize][t.block as usize] = true;
            }
        }
        violations.extend(crate::model::port_conflicts(j, step, n, budget));
    }

    for rank in 0..n {
        for block in 0..k {
            if !holdings[rank as usize][block as usize]
                && delivered[rank as usize][block as usize].is_none()
            {
                violations.push(Violation::MissingBlock { rank, block });
            }
        }
    }

    ModelReport {
        algorithm: format!("resume:{}", schedule.algorithm()),
        n,
        k,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdmc::schedule::{GlobalSchedule, GlobalTransfer};

    fn custom(n: u32, k: u32, steps: Vec<Vec<GlobalTransfer>>) -> GlobalSchedule {
        GlobalSchedule::from_custom_steps("resume", n, k, steps)
    }

    #[test]
    fn exact_resume_is_clean() {
        // Rank 0 holds both blocks, rank 1 holds none: two steps, one
        // block each.
        let s = custom(
            2,
            2,
            vec![
                vec![GlobalTransfer {
                    from: 0,
                    to: 1,
                    block: 0,
                }],
                vec![GlobalTransfer {
                    from: 0,
                    to: 1,
                    block: 1,
                }],
            ],
        );
        let holdings = vec![vec![true, true], vec![false, false]];
        let r = check_resume_schedule(&s, &holdings);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn retransmitting_a_held_block_is_flagged() {
        let s = custom(
            2,
            1,
            vec![vec![GlobalTransfer {
                from: 0,
                to: 1,
                block: 0,
            }]],
        );
        // Rank 1 already holds block 0: nothing should move.
        let holdings = vec![vec![true], vec![true]];
        let r = check_resume_schedule(&s, &holdings);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateDelivery { .. })),
            "{r}"
        );
    }

    #[test]
    fn relaying_before_receipt_is_flagged() {
        // Rank 1 forwards block 0 in the same step it receives it.
        let s = custom(
            3,
            1,
            vec![vec![
                GlobalTransfer {
                    from: 0,
                    to: 1,
                    block: 0,
                },
                GlobalTransfer {
                    from: 1,
                    to: 2,
                    block: 0,
                },
            ]],
        );
        let holdings = vec![vec![true], vec![false], vec![false]];
        let r = check_resume_schedule(&s, &holdings);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::SendWithoutBlock { .. })),
            "{r}"
        );
    }

    #[test]
    fn uncovered_hole_is_flagged() {
        let s = custom(2, 2, vec![]);
        let holdings = vec![vec![true, true], vec![true, false]];
        let r = check_resume_schedule(&s, &holdings);
        assert_eq!(
            r.violations,
            vec![Violation::MissingBlock { rank: 1, block: 1 }]
        );
    }

    #[test]
    fn transfer_to_a_failed_rank_is_flagged() {
        // Rank 2 does not exist in the two-survivor epoch: a send to it
        // is a send to a failed member.
        let s = custom(
            2,
            1,
            vec![vec![GlobalTransfer {
                from: 0,
                to: 2,
                block: 0,
            }]],
        );
        let holdings = vec![vec![true], vec![true]];
        let r = check_resume_schedule(&s, &holdings);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::Malformed { .. })),
            "{r}"
        );
    }

    #[test]
    fn port_budget_is_strict_by_default() {
        // Rank 0 sends two blocks in one step.
        let s = custom(
            3,
            2,
            vec![vec![
                GlobalTransfer {
                    from: 0,
                    to: 1,
                    block: 0,
                },
                GlobalTransfer {
                    from: 0,
                    to: 2,
                    block: 1,
                },
            ]],
        );
        let holdings = vec![vec![true, true], vec![true, false], vec![false, true]];
        let r = check_resume_schedule(&s, &holdings);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::SendPortConflict { .. })),
            "{r}"
        );
    }
}
