//! # analyzer — static analysis for the RDMC reproduction
//!
//! RDMC's correctness hinges on a property that is *statically decidable*:
//! block-transfer schedules are deterministic functions of
//! `(algorithm, n, k)`, so every invariant the paper relies on can be
//! proven ahead of time, without running the simulator. This crate is that
//! proof, in three layers:
//!
//! - [`model`] — a schedule **model checker**: coverage (every rank gets
//!   every block exactly once), causality (no rank relays a block before
//!   holding it), per-step send/receive **port-conflict freedom** against
//!   the full-duplex NIC model of §4.3, no self-sends, and per-algorithm
//!   completion-step bounds — exact `ceil(log2 n) + k - 1` for the
//!   binomial pipeline. Violations come with a **minimal counterexample
//!   trace** (a backward causal slice of the schedule).
//! - [`deadlock`] — a **posting-order lint**: builds the wait-for graph
//!   between pre-posted receives and scheduled sends implied by the
//!   credit-gated protocol of §4.2 and flags any cycle (a static RNR
//!   deadlock: every send on the cycle waits for a receive that is posted
//!   only after that send lands). It also measures how exposed the same
//!   schedule would be *without* credit gating, cross-checked against the
//!   fabric's `rnr_retry_limit`.
//! - [`reach`] — an engine **reachability check**: exhaustively explores
//!   the protocol engines' joint state machine (all message interleavings
//!   over in-order connections) for small `n, k` and proves there are no
//!   stuck states and that every terminal state has delivered all `k`
//!   blocks at every rank.
//! - [`mod@explore`] — a stateless **model checker of executions**: drives
//!   the deterministic simulator through alternative interleavings via a
//!   controlled scheduler (same-instant delivery races, pacer admission
//!   ties, crash-injection sites), exhaustively, with dynamic
//!   partial-order reduction, or as a seeded random walk. Every explored
//!   execution is vetted for survivor view agreement, §4.6
//!   stable-delivery gaplessness and monotonicity, zero RNR arms, trace
//!   validity, and replay determinism (bit-for-bit digest equality —
//!   the audit that mechanically catches unordered-map iteration).
//!   Violations come back as minimal replayable counterexamples.
//! - [`resume`] — a model checker for **recovery resume schedules**
//!   (the `recovery` crate's planner output): exact missing-block
//!   coverage, causality rooted at wedge-time holdings, strict port
//!   budgets, and survivors-only addressing. The sweep drives it over
//!   every wedge point of the binomial pipeline with every single- and
//!   double-failure pattern.
//!
//! [`sweep()`] runs all of these over an `(algorithm, n, k)` grid; the
//! `analyzer` binary (`cargo run -p analyzer -- --sweep`) drives it from
//! the command line and exits non-zero on any violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod explore;
pub mod model;
pub mod reach;
pub mod resume;
pub mod sweep;

pub use deadlock::{lint_schedule, DeadlockReport};
pub use explore::{
    audit_replay, explore_executions, replay, Counterexample, ExecutionResult, ExploreConfig,
    ExploreReport, ExploreScenario, PointRecord, Strategy,
};
pub use model::{check_schedule, ModelReport, PortBudget, StepBound, TraceEntry, Violation};
pub use reach::{explore, ReachConfig, ReachReport};
pub use resume::{check_resume_schedule, check_resume_schedule_with};
pub use sweep::{sweep, SweepConfig, SweepReport};
