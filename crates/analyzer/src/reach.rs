//! The engine reachability check.
//!
//! The schedule proofs in [`crate::model`] and [`crate::deadlock`] argue
//! about the *plan*; this module checks the *machine that executes it*.
//! It instantiates one [`GroupEngine`] per rank and exhaustively explores
//! the joint state space under every interleaving the transport permits:
//! per-connection-direction FIFO channels (RDMA reliable connections
//! deliver in order) carrying ready notices and blocks, plus send
//! completions that can reach the sender at any later point. The claim
//! proven is twofold: **no stuck states** (from every reachable state
//! some transition is enabled until the multicast is done) and **every
//! terminal state has delivered all `k` blocks at every rank**.
//!
//! The state space is exponential in flight depth, so this runs on small
//! `n, k` — which is exactly where every schedule topology's interesting
//! structure (first relay, shadow vertices, rack leaders) already shows
//! up.

// `visited` below is a membership-only digest set on the hot path of a
// multi-million-state search — hashing beats ordered comparison and its
// order is never observed.
#[allow(clippy::disallowed_types)]
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

use rdmc::engine::{Action, EngineConfig, Event, GroupEngine};
use rdmc::schedule::SchedulePlanner;
use rdmc::{Algorithm, Rank};

/// What flows over a directed rank-to-rank channel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Msg {
    /// A ready-for-block notice.
    Ready,
    /// A block, carrying the message size (the immediate value).
    Block(u64),
}

/// One explored global state.
#[derive(Clone)]
struct State {
    engines: Vec<GroupEngine>,
    /// In-flight messages per directed pair, in FIFO (wire) order.
    channels: BTreeMap<(Rank, Rank), VecDeque<Msg>>,
    /// Outstanding send completions per directed pair (deliverable to the
    /// sender at any time — completion interrupts are unordered relative
    /// to everything else).
    completions: BTreeMap<(Rank, Rank), u32>,
    delivered: Vec<bool>,
}

impl State {
    fn digest(&self) -> Vec<u64> {
        let mut d = Vec::new();
        for e in &self.engines {
            let sd = e.state_digest();
            d.push(sd.len() as u64);
            d.extend(sd);
        }
        d.push(u64::MAX); // section separator
        for ((a, b), q) in &self.channels {
            if q.is_empty() {
                continue;
            }
            d.push(u64::from(*a));
            d.push(u64::from(*b));
            d.push(q.len() as u64);
            for m in q {
                d.push(match m {
                    Msg::Ready => 1,
                    Msg::Block(s) => 2 + *s,
                });
            }
        }
        d.push(u64::MAX);
        for ((a, b), c) in &self.completions {
            if *c == 0 {
                continue;
            }
            d.push(u64::from(*a));
            d.push(u64::from(*b));
            d.push(u64::from(*c));
        }
        d.push(u64::MAX);
        d.extend(self.delivered.iter().map(|&b| u64::from(b)));
        d
    }

    fn is_quiescent(&self) -> bool {
        self.channels.values().all(VecDeque::is_empty) && self.completions.values().all(|&c| c == 0)
    }
}

/// Configuration of one reachability run.
#[derive(Clone, Debug)]
pub struct ReachConfig {
    /// The schedule family to check.
    pub algorithm: Algorithm,
    /// Group size.
    pub n: u32,
    /// Block count (the message is `k` full blocks).
    pub k: u32,
    /// `EngineConfig::ready_window`.
    pub ready_window: u32,
    /// `EngineConfig::max_outstanding_sends`.
    pub max_outstanding_sends: u32,
    /// Abort after this many distinct states (guards against grid points
    /// too large to enumerate; an aborted run proves nothing and is
    /// reported as truncated, not failed).
    pub max_states: usize,
}

/// The outcome of exploring one configuration's state space.
#[derive(Clone, Debug)]
#[must_use = "check `is_clean()`; an unread report hides stuck states"]
pub struct ReachReport {
    /// Human-readable algorithm label.
    pub algorithm: String,
    /// Group size.
    pub n: u32,
    /// Block count.
    pub k: u32,
    /// Distinct states visited.
    pub states: usize,
    /// Terminal states in which every rank had delivered the message.
    pub complete_terminals: usize,
    /// Stuck states: nothing deliverable, yet some rank had not
    /// delivered. Any entry is a violation.
    pub stuck: Vec<String>,
    /// Engine protocol errors hit during exploration (driver/peer bugs
    /// surfaced by an interleaving). Any entry is a violation.
    pub engine_errors: Vec<String>,
    /// True when the exploration hit `max_states` and stopped early.
    pub truncated: bool,
}

impl ReachReport {
    /// True when the full space was explored and held both claims.
    pub fn is_clean(&self) -> bool {
        self.stuck.is_empty() && self.engine_errors.is_empty() && !self.truncated
    }
}

impl std::fmt::Display for ReachReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} k={}: {} states, {} complete terminal(s), {} stuck, {} engine error(s){}",
            self.algorithm,
            self.n,
            self.k,
            self.states,
            self.complete_terminals,
            self.stuck.len(),
            self.engine_errors.len(),
            if self.truncated { " [truncated]" } else { "" }
        )
    }
}

/// Applies `actions` from `rank`'s engine to the state, enqueuing wire
/// messages and completions.
fn apply_actions(state: &mut State, rank: Rank, actions: Vec<Action>) {
    for action in actions {
        match action {
            Action::SendReady { to } => {
                state
                    .channels
                    .entry((rank, to))
                    .or_default()
                    .push_back(Msg::Ready);
            }
            Action::SendBlock { to, total_size, .. } => {
                state
                    .channels
                    .entry((rank, to))
                    .or_default()
                    .push_back(Msg::Block(total_size));
                *state.completions.entry((rank, to)).or_default() += 1;
            }
            Action::AllocateBuffer { .. } => {}
            Action::DeliverMessage { .. } => {
                state.delivered[rank as usize] = true;
            }
            Action::RelayFailure { .. } => {
                // No failures are injected; reaching this is a bug and
                // will show up as a stuck or incomplete terminal state.
            }
        }
    }
}

/// Exhaustively explores the joint engine state machine for one
/// configuration.
pub fn explore(config: &ReachConfig) -> ReachReport {
    let planner = Arc::new(SchedulePlanner::new(config.algorithm.clone()));
    let block_size = 64u64;
    let size = u64::from(config.k) * block_size;

    let mut init = State {
        engines: Vec::new(),
        channels: BTreeMap::new(),
        completions: BTreeMap::new(),
        delivered: vec![false; config.n as usize],
    };
    let mut initial_actions: Vec<(Rank, Vec<Action>)> = Vec::new();
    for rank in 0..config.n {
        let (engine, actions) = GroupEngine::new(EngineConfig {
            rank,
            num_nodes: config.n,
            block_size,
            ready_window: config.ready_window,
            max_outstanding_sends: config.max_outstanding_sends,
            planner: Arc::clone(&planner),
        });
        init.engines.push(engine);
        initial_actions.push((rank, actions));
    }
    for (rank, actions) in initial_actions {
        apply_actions(&mut init, rank, actions);
    }

    let mut report = ReachReport {
        algorithm: config.algorithm.to_string(),
        n: config.n,
        k: config.k,
        states: 0,
        complete_terminals: 0,
        stuck: Vec::new(),
        engine_errors: Vec::new(),
        truncated: false,
    };

    // Kick off the multicast at the root.
    match init.engines[0].handle(Event::StartSend { size }) {
        Ok(actions) => apply_actions(&mut init, 0, actions),
        Err(e) => {
            report.engine_errors.push(format!("root StartSend: {e}"));
            return report;
        }
    }

    #[allow(clippy::disallowed_types)]
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut stack: Vec<State> = Vec::new();
    if visited.insert(init.digest()) {
        stack.push(init);
    }

    while let Some(state) = stack.pop() {
        report.states += 1;
        if report.states >= config.max_states {
            report.truncated = true;
            break;
        }

        let mut any_transition = false;

        // Transition family 1: deliver the head of any non-empty channel.
        let heads: Vec<(Rank, Rank, Msg)> = state
            .channels
            .iter()
            .filter_map(|(&(a, b), q)| q.front().map(|&m| (a, b, m)))
            .collect();
        for (from, to, msg) in heads {
            any_transition = true;
            let mut next = state.clone();
            if let Some(q) = next.channels.get_mut(&(from, to)) {
                q.pop_front();
            }
            let event = match msg {
                Msg::Ready => Event::ReadyReceived { from },
                Msg::Block(total_size) => Event::BlockReceived { from, total_size },
            };
            match next.engines[to as usize].handle(event) {
                Ok(actions) => {
                    apply_actions(&mut next, to, actions);
                    if visited.insert(next.digest()) {
                        stack.push(next);
                    }
                }
                Err(e) => {
                    if report.engine_errors.len() < 8 {
                        report
                            .engine_errors
                            .push(format!("rank {to} on {msg:?} from {from}: {e}"));
                    }
                }
            }
        }

        // Transition family 2: deliver any outstanding send completion.
        let pending: Vec<(Rank, Rank)> = state
            .completions
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&pair, _)| pair)
            .collect();
        for (from, to) in pending {
            any_transition = true;
            let mut next = state.clone();
            if let Some(c) = next.completions.get_mut(&(from, to)) {
                *c -= 1;
            }
            match next.engines[from as usize].handle(Event::SendCompleted { to }) {
                Ok(actions) => {
                    apply_actions(&mut next, from, actions);
                    if visited.insert(next.digest()) {
                        stack.push(next);
                    }
                }
                Err(e) => {
                    if report.engine_errors.len() < 8 {
                        report
                            .engine_errors
                            .push(format!("rank {from} completion to {to}: {e}"));
                    }
                }
            }
        }

        if !any_transition {
            // Terminal: every rank must have delivered (the root counts
            // once its own send completes locally) and the wires must be
            // drained.
            let all_delivered = state.delivered.iter().all(|&d| d);
            if all_delivered && state.is_quiescent() {
                report.complete_terminals += 1;
            } else if report.stuck.len() < 8 {
                let undelivered: Vec<Rank> = (0..config.n)
                    .filter(|&r| !state.delivered[r as usize])
                    .collect();
                report.stuck.push(format!(
                    "stuck state: ranks {undelivered:?} never delivered"
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_has_no_stuck_states() {
        let r = explore(&ReachConfig {
            algorithm: Algorithm::BinomialPipeline,
            n: 3,
            k: 2,
            ready_window: 1,
            max_outstanding_sends: 1,
            max_states: 1_000_000,
        });
        assert!(r.is_clean(), "{r}");
        assert!(r.complete_terminals >= 1);
        assert!(r.states > 1);
    }
}
