//! Stateless model checking of protocol *executions*: drives the
//! deterministic simulator through alternative interleavings and checks
//! every explored execution against the protocol's invariants.
//!
//! The rest of this crate proves properties of *schedules* — static
//! artifacts. This module checks the *dynamic* side: the event loop's
//! tie-breaks. The simulator is deterministic, which makes every run
//! reproducible but also means one arbitrary interleaving out of many
//! legal ones is the only one ever tested. The explorer externalises the
//! tie-breaks through the [`verbs::Scheduler`] trait: every burst of
//! same-instant software-visible deliveries, every pacer admission tie,
//! every configured crash-injection site, and — within the scenario's
//! [`ExploreScenario::loss_choices`] budget — every wire loss site
//! (deliver or drop) becomes an explicit *choice point*, and a recorded
//! choice sequence replays the execution bit-for-bit.
//!
//! Three strategies:
//!
//! - [`Strategy::Exhaustive`] — enumerate every interleaving (small
//!   `n, k` only; the CI tier).
//! - [`Strategy::Dpor`] — dynamic partial-order reduction: prune
//!   interleavings that only permute *independent* events (disjoint node
//!   and connection footprints). Backtrack points are added at **every**
//!   earlier choice point where the executed event was enabled and
//!   dependent — a sound over-approximation of Flanagan–Godefroid
//!   persistent sets, validated against exhaustive enumeration in the
//!   test suite.
//! - [`Strategy::Random`] — a seeded random walk with an execution
//!   budget, for wide shallow coverage in time-boxed CI runs.
//!
//! Every explored execution is vetted by the invariant suite: survivor
//! view agreement, stable-delivery monotonicity and gaplessness (§4.6),
//! zero RNR arms (§4.2), trace-oracle validity (which subsumes
//! delivery-before-receipt), terminal quiescence, and — the determinism
//! audit — [`SimCluster::state_digest`] equality across replays of one
//! choice sequence and across all crash-free interleavings. The audit is
//! the mechanical form of the review that once caught hash-order
//! iteration in epoch teardown: a `HashMap`-order bug diverges under
//! replay and fails immediately.
//!
//! Violations come back as a [`Counterexample`]: a minimal choice
//! sequence plus the flight-recorder trace, re-runnable bit-for-bit via
//! [`replay`] (the CLI's `--replay=CHOICES` flag).

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

use rdmc::Algorithm;
use rdmc_sim::{
    ClusterBuilder, ClusterSpec, GroupSpec, Mutation, RecoveryConfig, ReliabilityPolicy, SimCluster,
};
use verbs::{Candidate, CandidateKind, ChoicePoint, PointKind, Scheduler, SharedScheduler};

/// One resolved choice point, as recorded during an execution. The
/// sequence of records *is* the execution's identity: replaying the
/// `chosen` indices reproduces it bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointRecord {
    /// Virtual time of the racing events, in nanoseconds.
    pub time_ns: u64,
    /// Which layer asked.
    pub kind: PointKind,
    /// The enabled candidates, in deterministic default order.
    pub candidates: Vec<Candidate>,
    /// Index of the candidate that ran.
    pub chosen: usize,
}

/// SplitMix64 — a tiny deterministic generator for the random walk (the
/// walk must be replayable from its seed alone).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// How one execution's choices are made.
enum Pick {
    /// Follow a scripted prefix; answer the deterministic default (0)
    /// beyond it. Out-of-range scripted entries also fall back to 0, so
    /// any recorded script replays against any compatible run.
    Script(Vec<usize>),
    /// Uniform pseudorandom choices from a seeded generator.
    Random(SplitMix64),
}

/// The scheduler the explorer injects: resolves choices per [`Pick`] and
/// logs every resolved point.
struct LoggingScheduler {
    pick: Pick,
    log: Vec<PointRecord>,
}

impl Scheduler for LoggingScheduler {
    fn choose(&mut self, point: &ChoicePoint<'_>) -> usize {
        let n = point.candidates.len();
        let chosen = match &mut self.pick {
            Pick::Script(script) => {
                let scripted = script.get(self.log.len()).copied().unwrap_or(0);
                if scripted < n {
                    scripted
                } else {
                    0
                }
            }
            Pick::Random(rng) => (rng.next() % n as u64) as usize,
        };
        self.log.push(PointRecord {
            time_ns: point.time_ns,
            kind: point.kind,
            candidates: point.candidates.to_vec(),
            chosen,
        });
        chosen
    }
}

/// The workload one exploration drives: a single group, `messages`
/// multicasts from the root, with optional atomic delivery, recovery,
/// crash-injection sites, and seeded mutations.
#[derive(Clone, Debug)]
pub struct ExploreScenario {
    /// Block-dissemination algorithm.
    pub algorithm: Algorithm,
    /// Group size.
    pub n: u32,
    /// Blocks per message (message size = `k * block_size`).
    pub k: u32,
    /// Block size in bytes.
    pub block_size: u64,
    /// Multicasts submitted at time zero.
    pub messages: u32,
    /// Readiness credits granted ahead per peer.
    pub ready_window: u32,
    /// Block sends a member may have posted at once.
    pub max_outstanding_sends: u32,
    /// Derecho-style §4.6 atomic delivery (stable-frontier invariants
    /// apply). Mutually exclusive with `fault_sites` (atomic groups do
    /// not reconfigure).
    pub atomic: bool,
    /// Multi-sender atomic multicast (the Derecho overlay): every
    /// member is a sender, `messages` submissions rotate round-robin
    /// through one RDMC subgroup per sender, and every execution is
    /// checked for cross-rank delivery-log agreement. Built via
    /// [`ExploreScenario::atomic`]; mutually exclusive with `atomic`
    /// and `reliability`.
    pub multi_sender: bool,
    /// Crash-injection sites `(protocol step, victim node)`. When
    /// non-empty, the execution's *first* choice point picks one site —
    /// or none — and recovery is enabled so the run can finish.
    pub fault_sites: Vec<(u64, usize)>,
    /// Wire loss-site budget: the first `loss_choices` data transfers
    /// each become a deliver-or-drop choice point
    /// ([`verbs::PointKind::LossSite`]), so the explorer enumerates
    /// which transfers the fabric loses instead of sampling them.
    pub loss_choices: u64,
    /// Reliability policy protecting the group when loss sites are
    /// explored; recovery is enabled alongside so escalations can
    /// finish.
    pub reliability: Option<ReliabilityPolicy>,
    /// Deliberately seeded ordering bugs (mutation testing).
    pub mutations: Vec<Mutation>,
}

impl ExploreScenario {
    /// The CI-tier default: a small group moving a few blocks with
    /// atomic delivery on, sized so exhaustive enumeration stays
    /// tractable.
    pub fn small(algorithm: Algorithm, n: u32, k: u32) -> Self {
        ExploreScenario {
            algorithm,
            n,
            k,
            block_size: 64 << 10,
            messages: 1,
            ready_window: 1,
            max_outstanding_sends: 1,
            atomic: true,
            multi_sender: false,
            fault_sites: Vec::new(),
            loss_choices: 0,
            reliability: None,
            mutations: Vec::new(),
        }
    }

    /// The multi-sender CI tier: an `n`-member *atomic multicast* group
    /// (one rotated RDMC subgroup per sender, SST stability frontiers,
    /// total-order delivery), one full rotation of `k`-block messages,
    /// sized so exhaustive enumeration stays tractable. Every explored
    /// interleaving is checked for the cross-rank
    /// delivery-log-agreement invariant: all members must deliver the
    /// identical `(slot, sender, seq, size)` sequence.
    pub fn atomic(algorithm: Algorithm, n: u32, k: u32) -> Self {
        ExploreScenario {
            atomic: false,
            multi_sender: true,
            messages: n,
            ..Self::small(algorithm, n, k)
        }
    }

    /// A crash-exploring variant: recovery on, atomic off, with the
    /// given `(protocol step, victim node)` sites offered to the
    /// explorer as alternative first choices.
    pub fn with_faults(mut self, sites: Vec<(u64, usize)>) -> Self {
        self.atomic = false;
        self.fault_sites = sites;
        self
    }

    /// A loss-exploring variant: the first `budget` wire transfers
    /// become deliver-or-drop choice points, the group is protected by
    /// `policy`, and recovery is on (atomic delivery off) so drop
    /// branches that escalate can still converge.
    pub fn with_loss(mut self, budget: u64, policy: ReliabilityPolicy) -> Self {
        self.atomic = false;
        self.loss_choices = budget;
        self.reliability = Some(policy);
        self
    }

    /// Seeds a deliberate ordering bug (see [`Mutation`]).
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutations.push(m);
        self
    }
}

/// Everything one execution produced.
#[derive(Clone, Debug)]
#[must_use = "check `violations`; an unread execution hides failures"]
pub struct ExecutionResult {
    /// The resolved choice points, in order. The `chosen` indices are
    /// the replay script.
    pub points: Vec<PointRecord>,
    /// Canonical time-free digest of the terminal cluster state
    /// (`0` when the run panicked).
    pub digest: u64,
    /// Invariant violations (empty for a clean execution).
    pub violations: Vec<String>,
    /// The flight-recorder trace, JSONL-encoded (for counterexample
    /// artifacts; empty when the run panicked).
    pub trace_jsonl: String,
    /// The panic message, if the run aborted (engine protocol-violation
    /// panics and debug asserts surface here; also counted as a
    /// violation).
    pub panic: Option<String>,
    /// Whether a crash was injected (the first choice picked a fault
    /// site rather than "no fault").
    pub crashed: bool,
}

impl ExecutionResult {
    /// The replay script: the chosen index at each point.
    pub fn script(&self) -> Vec<usize> {
        self.points.iter().map(|p| p.chosen).collect()
    }
}

/// A minimal failing execution: replaying `choices` through [`replay`]
/// reproduces `violations` bit-for-bit.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The minimized choice sequence.
    pub choices: Vec<usize>,
    /// What the invariant suite reported.
    pub violations: Vec<String>,
    /// Terminal digest of the failing execution (0 on panic).
    pub digest: u64,
    /// Flight-recorder trace of the failing execution, JSONL-encoded.
    pub trace_jsonl: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        writeln!(f, "counterexample: --replay={}", choices.join(","))?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        write!(f, "  terminal digest {:#018x}", self.digest)
    }
}

/// How to walk the interleaving space.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Every interleaving, depth-first.
    Exhaustive,
    /// Dynamic partial-order reduction over the same space.
    Dpor,
    /// A seeded random walk of `executions` runs.
    Random {
        /// PRNG seed (the walk is fully determined by it).
        seed: u64,
        /// Executions to attempt.
        executions: u64,
    },
}

/// One exploration request.
#[derive(Clone, Debug)]
#[must_use = "pass the config to `explore_executions`"]
pub struct ExploreConfig {
    /// The workload.
    pub scenario: ExploreScenario,
    /// The walk.
    pub strategy: Strategy,
    /// Hard cap on executions (exhaustive/DPOR runs that hit it report
    /// `truncated` — loudly, never silently).
    pub max_executions: u64,
    /// Re-run every `n`-th execution with the identical script and
    /// compare digests, traces, and choice logs (the replay-determinism
    /// audit). `1` audits every execution; `0` audits only the first.
    pub replay_every: u64,
}

impl ExploreConfig {
    /// Exhaustive enumeration of a scenario with CI-friendly caps.
    pub fn exhaustive(scenario: ExploreScenario) -> Self {
        ExploreConfig {
            scenario,
            strategy: Strategy::Exhaustive,
            max_executions: 20_000,
            replay_every: 64,
        }
    }

    /// DPOR over the same space.
    pub fn dpor(scenario: ExploreScenario) -> Self {
        ExploreConfig {
            strategy: Strategy::Dpor,
            ..Self::exhaustive(scenario)
        }
    }

    /// A seeded random walk.
    pub fn random(scenario: ExploreScenario, seed: u64, executions: u64) -> Self {
        ExploreConfig {
            scenario,
            strategy: Strategy::Random { seed, executions },
            max_executions: executions,
            replay_every: 16,
        }
    }
}

/// What an exploration found.
#[derive(Clone, Debug)]
#[must_use = "check `is_clean()`; an unread report hides counterexamples"]
pub struct ExploreReport {
    /// Executions actually run (excluding replay-audit re-runs and
    /// minimization probes).
    pub executions: u64,
    /// Total choice points resolved across all executions.
    pub points_resolved: u64,
    /// Deepest execution (choice points in one run).
    pub max_depth: usize,
    /// Distinct terminal digests over crash-free executions (must stay
    /// at 1 — state convergence; a second digest is itself a violation).
    pub crash_free_digests: BTreeSet<u64>,
    /// Distinct terminal digests over crash-injected executions
    /// (informational: different detection timings may legally abandon
    /// different messages).
    pub crashed_digests: BTreeSet<u64>,
    /// The exploration hit `max_executions` before exhausting the space
    /// (a random walk never sets this: its budget *is* the space).
    pub truncated: bool,
    /// The first invariant violation found, minimized.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// True when every explored execution satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none()
    }
}

impl std::fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} executions, {} choice points (max depth {}), {} crash-free digest(s){}{}",
            self.executions,
            self.points_resolved,
            self.max_depth,
            self.crash_free_digests.len(),
            if self.truncated {
                " [TRUNCATED at max_executions]"
            } else {
                ""
            },
            if self.is_clean() { ", clean" } else { "" },
        )?;
        if let Some(cex) = &self.counterexample {
            write!(f, "\n{cex}")?;
        }
        Ok(())
    }
}

/// Runs one execution under the given pick policy.
fn run_with(scenario: &ExploreScenario, pick: Pick) -> ExecutionResult {
    let sched = Arc::new(Mutex::new(LoggingScheduler {
        pick,
        log: Vec::new(),
    }));
    let shared: SharedScheduler = sched.clone();

    let mut violations = Vec::new();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut builder = ClusterBuilder::new(ClusterSpec::fractus(scenario.n as usize))
            .flight_recorder(trace::Mode::Full)
            .scheduler(shared.clone());
        if !scenario.fault_sites.is_empty() || scenario.reliability.is_some() {
            builder = builder.recovery(RecoveryConfig::default());
        }
        let mut cluster = builder.build();
        cluster.set_loss_choice_budget(scenario.loss_choices);
        for &m in &scenario.mutations {
            cluster.seed_mutation(m);
        }
        let spec = GroupSpec {
            members: (0..scenario.n as usize).collect(),
            algorithm: scenario.algorithm.clone(),
            block_size: scenario.block_size,
            ready_window: scenario.ready_window,
            max_outstanding_sends: scenario.max_outstanding_sends,
        };
        let group = if scenario.multi_sender {
            let ag = cluster.create_atomic_group(spec);
            // The anchor subgroup's id names the overlay group for the
            // epoch-agreement check below.
            cluster.atomic_subgroups(ag)[0]
        } else {
            let group = cluster.create_group(spec);
            if scenario.atomic {
                cluster.enable_atomic_delivery(group);
            }
            if let Some(policy) = scenario.reliability {
                cluster.set_reliability(group, policy);
            }
            group
        };
        let injected = offer_fault_choice(scenario, &shared, &mut cluster);
        for _ in 0..scenario.messages {
            let size = scenario.block_size * u64::from(scenario.k);
            if scenario.multi_sender {
                let _ = cluster.submit_atomic(0, size);
            } else {
                let _ = cluster.submit_send(group, size);
            }
        }
        while cluster.step() {}
        (cluster, group, injected)
    }));

    let (digest, trace_jsonl, panic, crashed) = match outcome {
        Ok((cluster, group, injected)) => {
            check_invariants(scenario, &cluster, group, injected, &mut violations);
            (
                cluster.state_digest(),
                trace::export::to_jsonl(&cluster.trace_events()),
                None,
                injected,
            )
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            violations.push(format!("execution panicked: {msg}"));
            (0, String::new(), Some(msg), false)
        }
    };

    let points = std::mem::take(&mut sched.lock().expect("scheduler mutex").log);
    ExecutionResult {
        points,
        digest,
        violations,
        trace_jsonl,
        panic,
        crashed,
    }
}

/// The fault-injection choice point: candidate 0 is "no fault", the rest
/// are the scenario's sites. Routed through the shared scheduler so the
/// choice lands in the same global sequence as every delivery race.
/// Returns whether a crash was scheduled.
fn offer_fault_choice(
    scenario: &ExploreScenario,
    shared: &SharedScheduler,
    cluster: &mut SimCluster,
) -> bool {
    if scenario.fault_sites.is_empty() {
        return false;
    }
    let mut candidates = vec![Candidate {
        seq: 0,
        node: u32::MAX,
        conn: None,
        kind: CandidateKind::FaultSite {
            step: u64::MAX,
            victim: u32::MAX,
        },
    }];
    candidates.extend(
        scenario
            .fault_sites
            .iter()
            .enumerate()
            .map(|(i, &(step, victim))| Candidate {
                seq: i as u64 + 1,
                node: victim as u32,
                conn: None,
                kind: CandidateKind::FaultSite {
                    step,
                    victim: victim as u32,
                },
            }),
    );
    let point = ChoicePoint {
        time_ns: 0,
        kind: PointKind::FaultSite,
        candidates: &candidates,
    };
    let chosen = verbs::sched::pick(shared, &point);
    if let CandidateKind::FaultSite { step, victim } = candidates[chosen].kind {
        if victim != u32::MAX {
            cluster.crash_after_events(victim as usize, step);
            return true;
        }
    }
    false
}

/// Runs one execution of `scenario` under the given choice script
/// (default-0 beyond its end) and checks the per-execution invariants.
/// This is the exact runner the explorer uses, exposed so recorded
/// counterexamples replay bit-for-bit.
pub fn replay(scenario: &ExploreScenario, script: &[usize]) -> ExecutionResult {
    run_with(scenario, Pick::Script(script.to_vec()))
}

/// The per-execution invariant suite.
fn check_invariants(
    scenario: &ExploreScenario,
    cluster: &SimCluster,
    group: rdmc_sim::GroupId,
    injected: bool,
    violations: &mut Vec<String>,
) {
    // §4.2: the credit discipline means the RNR machinery never arms.
    let rnr = cluster.fabric().stats().rnr_arms;
    if rnr != 0 {
        violations.push(format!(
            "a send raced ahead of receive posting: {rnr} RNR arm(s)"
        ));
    }
    // Terminal quiescence: survivors finished or consistently abandoned
    // every message.
    if !cluster.live_quiescent() {
        violations.push("not live-quiescent at termination".to_string());
    }
    if !injected && !cluster.all_quiescent() {
        violations.push("crash-free run not fully quiescent at termination".to_string());
    }
    // View agreement: all survivors run the same epoch.
    let epochs = cluster.live_member_epochs(group);
    if epochs.windows(2).any(|w| w[0] != w[1]) {
        violations.push(format!("survivors disagree on the epoch: {epochs:?}"));
    }
    // Crash-free completeness: every message delivered at every member.
    if !injected {
        for m in cluster.message_results() {
            if m.delivered_at.iter().any(|d| d.is_none()) {
                violations.push(format!(
                    "message {} of group {} missing deliveries in a crash-free run",
                    m.index, m.group
                ));
            }
        }
    }
    // §4.6 stable frontier: per member, stable deliveries are gapless
    // (the delivered prefix — all of it at quiescence) and their times
    // are monotone.
    if scenario.atomic {
        for rank in 0..scenario.n {
            let stable = cluster.stable_deliveries(group, rank);
            if stable.len() != scenario.messages as usize {
                violations.push(format!(
                    "rank {rank}: {} of {} messages stably delivered",
                    stable.len(),
                    scenario.messages
                ));
            }
            if stable.windows(2).any(|w| w[1] < w[0]) {
                violations.push(format!("rank {rank}: stable-delivery times regressed"));
            }
        }
    }
    // The multi-sender total order: every live member's delivery log
    // must be the identical `(slot, sender, seq, size)` sequence in
    // strictly increasing slot order — the atomic multicast's defining
    // guarantee, checked across every explored interleaving.
    if scenario.multi_sender {
        let live = cluster.atomic_live_members(0);
        if let Some((&first, rest)) = live.split_first() {
            let reference = cluster.atomic_log(0, first);
            if !injected && reference.len() != scenario.messages as usize {
                violations.push(format!(
                    "member {first}: {} of {} atomic messages delivered in a crash-free run",
                    reference.len(),
                    scenario.messages
                ));
            }
            if reference.windows(2).any(|w| w[0].slot >= w[1].slot) {
                violations.push(format!("member {first}: delivery slots not increasing"));
            }
            for &m in rest {
                let log = cluster.atomic_log(0, m);
                if log.len() != reference.len()
                    || reference
                        .iter()
                        .zip(log)
                        .any(|(a, b)| (a.slot, a.sender, a.seq) != (b.slot, b.sender, b.seq))
                {
                    violations.push(format!(
                        "delivery logs disagree: members {first} and {m} ordered slots differently"
                    ));
                }
            }
        }
    }
    // The trace oracle: FIFO send/arrival pairing (no delivery before
    // receipt), causality, delivery completeness, no RNR arms.
    if cluster.recorder().dropped() == 0 {
        let events = cluster.trace_events();
        if let Err(errs) =
            trace::check::check_events(&events, &trace::check::CheckConfig::default())
        {
            for e in errs.into_iter().take(5) {
                violations.push(format!("trace oracle: {e}"));
            }
        }
    } else {
        violations.push("flight recorder dropped events under Mode::Full".to_string());
    }
}

/// Replays `script` twice and reports any divergence — the determinism
/// audit. A divergence means some state consulted during the run is not
/// a pure function of (scenario, choices): unordered-map iteration,
/// address-dependent ordering, stray global state. Returns violations
/// (empty when the two runs match bit-for-bit).
pub fn audit_replay(scenario: &ExploreScenario, script: &[usize]) -> Vec<String> {
    let a = replay(scenario, script);
    let b = replay(scenario, script);
    let mut out = Vec::new();
    if a.digest != b.digest {
        out.push(format!(
            "replay divergence: digests {:#018x} vs {:#018x} for one choice sequence",
            a.digest, b.digest
        ));
    }
    if a.points != b.points {
        let at = a
            .points
            .iter()
            .zip(&b.points)
            .position(|(x, y)| x != y)
            .map_or_else(
                || format!("lengths {} vs {}", a.points.len(), b.points.len()),
                |i| format!("first divergent point {i}"),
            );
        out.push(format!("replay divergence in the choice-point log: {at}"));
    }
    if a.trace_jsonl != b.trace_jsonl {
        out.push("replay divergence in the flight-recorder trace".to_string());
    }
    out
}

/// Two candidates commute iff their footprints are disjoint: different
/// observing nodes and different connections. Timers are conservatively
/// dependent with everything (their handlers touch cluster-wide state:
/// submissions, crashes, reconfiguration).
fn dependent(a: &Candidate, b: &Candidate) -> bool {
    if matches!(a.kind, CandidateKind::Timer { .. })
        || matches!(b.kind, CandidateKind::Timer { .. })
    {
        return true;
    }
    if a.node == b.node {
        return true;
    }
    matches!((a.conn, b.conn), (Some(x), Some(y)) if x == y)
}

/// Shared bookkeeping across an exploration.
struct Driver<'a> {
    config: &'a ExploreConfig,
    report: ExploreReport,
}

impl<'a> Driver<'a> {
    fn new(config: &'a ExploreConfig) -> Self {
        Driver {
            config,
            report: ExploreReport {
                executions: 0,
                points_resolved: 0,
                max_depth: 0,
                crash_free_digests: BTreeSet::new(),
                crashed_digests: BTreeSet::new(),
                truncated: false,
                counterexample: None,
            },
        }
    }

    /// Runs one execution, folds the result into the report, and
    /// returns it — or `None` once a counterexample is locked in (the
    /// exploration stops at the first violation).
    fn run(&mut self, pick: Pick) -> Option<ExecutionResult> {
        let exec = run_with(&self.config.scenario, pick);
        self.report.executions += 1;
        self.report.points_resolved += exec.points.len() as u64;
        self.report.max_depth = self.report.max_depth.max(exec.points.len());
        let mut violations = exec.violations.clone();
        // Replay-determinism audit, sampled (always on the first
        // execution, so even single-run explorations get one).
        let audited = self.report.executions == 1
            || (self.config.replay_every != 0
                && self.report.executions % self.config.replay_every == 1);
        if violations.is_empty() && audited {
            violations.extend(audit_replay(&self.config.scenario, &exec.script()));
        }
        if violations.is_empty() {
            if exec.crashed {
                self.report.crashed_digests.insert(exec.digest);
            } else {
                // State convergence: every crash-free interleaving must
                // reach the same terminal state.
                self.report.crash_free_digests.insert(exec.digest);
                if self.report.crash_free_digests.len() > 1 {
                    violations.push(format!(
                        "crash-free interleavings diverged: {} distinct terminal digests",
                        self.report.crash_free_digests.len()
                    ));
                }
            }
        }
        if !violations.is_empty() {
            self.fail(exec.script(), violations);
            return None;
        }
        Some(exec)
    }

    /// Minimizes and records the counterexample.
    fn fail(&mut self, script: Vec<usize>, violations: Vec<String>) {
        let scenario = self.config.scenario.clone();
        let known_digests = self.report.crash_free_digests.clone();
        let still_fails = |s: &[usize]| -> bool {
            let e = replay(&scenario, s);
            if !e.violations.is_empty() {
                return true;
            }
            // Divergence violations only show under the audit; digest
            // splits only against the already-seen crash-free digests.
            !audit_replay(&scenario, s).is_empty()
                || (!e.crashed && !known_digests.is_empty() && !known_digests.contains(&e.digest))
        };
        let mut min = script;
        if still_fails(&min) {
            // Greedily reset choices to the default from the end; keep
            // each reset only if the violation survives.
            for i in (0..min.len()).rev() {
                if min[i] == 0 {
                    continue;
                }
                let mut probe = min.clone();
                probe[i] = 0;
                if still_fails(&probe) {
                    min = probe;
                }
            }
            while min.last() == Some(&0) {
                min.pop();
            }
        }
        let exec = replay(&scenario, &min);
        let final_violations = if exec.violations.is_empty() {
            violations
        } else {
            exec.violations.clone()
        };
        self.report.counterexample = Some(Counterexample {
            choices: min,
            violations: final_violations,
            digest: exec.digest,
            trace_jsonl: exec.trace_jsonl,
        });
    }
}

/// Runs an exploration.
pub fn explore_executions(config: &ExploreConfig) -> ExploreReport {
    let mut driver = Driver::new(config);
    match config.strategy {
        Strategy::Exhaustive => exhaustive(&mut driver),
        Strategy::Dpor => dpor(&mut driver),
        Strategy::Random { seed, executions } => random_walk(&mut driver, seed, executions),
    }
    driver.report
}

/// Depth-first enumeration of every choice combination.
fn exhaustive(driver: &mut Driver<'_>) {
    let mut script: Vec<usize> = Vec::new();
    loop {
        if driver.report.executions >= driver.config.max_executions {
            driver.report.truncated = true;
            return;
        }
        let Some(exec) = driver.run(Pick::Script(script.clone())) else {
            return; // counterexample found
        };
        // Advance: take the deepest point with an untried alternative,
        // increment it, and drop everything beyond (defaults re-fill).
        let mut choices: Vec<(usize, usize)> = exec
            .points
            .iter()
            .map(|p| (p.chosen, p.candidates.len()))
            .collect();
        loop {
            match choices.pop() {
                None => return, // space exhausted
                Some((c, n)) if c + 1 < n => {
                    choices.push((c + 1, n));
                    break;
                }
                Some(_) => {}
            }
        }
        script = choices.iter().map(|&(c, _)| c).collect();
    }
}

/// One frame of the DPOR search stack: a choice point on the current
/// execution path with its accumulated backtrack and done sets.
struct Frame {
    candidates: Vec<Candidate>,
    kind: PointKind,
    /// The choice taken on the path currently below this frame.
    path: usize,
    /// Choices that must be explored from this point.
    backtrack: BTreeSet<usize>,
    /// Choices already explored (or being explored) from this point.
    done: BTreeSet<usize>,
}

impl Frame {
    fn fresh(p: &PointRecord) -> Self {
        Frame {
            candidates: p.candidates.clone(),
            kind: p.kind,
            path: p.chosen,
            backtrack: BTreeSet::from([p.chosen]),
            done: BTreeSet::from([p.chosen]),
        }
    }

    fn pending(&self) -> Option<usize> {
        self.backtrack.difference(&self.done).next().copied()
    }
}

/// Dynamic partial-order reduction: like [`exhaustive`], but a choice is
/// explored at a point only if some executed event *dependent* on it ran
/// later from that point — interleavings that merely permute independent
/// events collapse into one representative.
fn dpor(driver: &mut Driver<'_>) {
    let Some(exec) = driver.run(Pick::Script(Vec::new())) else {
        return;
    };
    let mut frames: Vec<Frame> = exec.points.iter().map(Frame::fresh).collect();
    add_backtracks(&mut frames, &exec.points);
    loop {
        if driver.report.executions >= driver.config.max_executions {
            driver.report.truncated = true;
            return;
        }
        // Deepest frame with an untried backtrack choice.
        let Some(depth) = (0..frames.len())
            .rev()
            .find(|&i| frames[i].pending().is_some())
        else {
            return; // reduced space exhausted
        };
        frames.truncate(depth + 1);
        let next = frames[depth].pending().expect("found above");
        frames[depth].done.insert(next);
        let mut script: Vec<usize> = frames[..depth].iter().map(|f| f.path).collect();
        script.push(next);
        let Some(exec) = driver.run(Pick::Script(script)) else {
            return;
        };
        // Refresh frames beyond the branch point from the new run;
        // shallower frames keep their accumulated sets.
        for (i, p) in exec.points.iter().enumerate() {
            if i < depth {
                debug_assert_eq!(frames[i].candidates, p.candidates, "prefix must replay");
                frames[i].path = p.chosen;
            } else if i == depth {
                frames[i].path = p.chosen;
                frames[i].done.insert(p.chosen);
                frames[i].backtrack.insert(p.chosen);
            } else if i < frames.len() {
                frames[i] = Frame::fresh(p);
            } else {
                frames.push(Frame::fresh(p));
            }
        }
        frames.truncate(exec.points.len());
        add_backtracks(&mut frames, &exec.points);
    }
}

/// Adds backtrack points implied by one execution: for every executed
/// event, every earlier choice point whose executed event is dependent
/// must also try this event (if it was enabled there; all alternatives
/// if it was not — the sound over-approximation). Non-delivery points
/// (pacer ties, fault sites) are explored fully: their candidates all
/// touch shared admission or membership state.
fn add_backtracks(frames: &mut [Frame], points: &[PointRecord]) {
    for i in 0..points.len() {
        if frames[i].kind != PointKind::Delivery {
            let all: BTreeSet<usize> = (0..frames[i].candidates.len()).collect();
            frames[i].backtrack.extend(all);
            continue;
        }
        let ei = points[i].candidates[points[i].chosen];
        for j in (0..i).rev() {
            if points[j].kind != PointKind::Delivery {
                continue;
            }
            let ej = points[j].candidates[points[j].chosen];
            if !dependent(&ej, &ei) {
                continue;
            }
            match points[j].candidates.iter().position(|c| c.seq == ei.seq) {
                Some(idx) => {
                    frames[j].backtrack.insert(idx);
                }
                None => {
                    let all: BTreeSet<usize> = (0..frames[j].candidates.len()).collect();
                    frames[j].backtrack.extend(all);
                }
            }
        }
    }
}

/// A seeded random walk: uniform choices at every point, `executions`
/// runs. Each run's script is recovered from its log, so any violating
/// walk replays exactly.
fn random_walk(driver: &mut Driver<'_>, seed: u64, executions: u64) {
    let mut master = SplitMix64(seed ^ 0x6a09_e667_f3bc_c908);
    for _ in 0..executions {
        let run_seed = master.next();
        if driver.run(Pick::Random(SplitMix64(run_seed))).is_none() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_scheduler_defaults_to_zero_beyond_script() {
        let mut s = LoggingScheduler {
            pick: Pick::Script(vec![1]),
            log: Vec::new(),
        };
        let cands = [
            Candidate {
                seq: 0,
                node: 0,
                conn: None,
                kind: CandidateKind::Recv,
            },
            Candidate {
                seq: 1,
                node: 1,
                conn: None,
                kind: CandidateKind::Recv,
            },
        ];
        let point = ChoicePoint {
            time_ns: 0,
            kind: PointKind::Delivery,
            candidates: &cands,
        };
        assert_eq!(s.choose(&point), 1);
        assert_eq!(s.choose(&point), 0);
        assert_eq!(s.log.len(), 2);
    }

    #[test]
    fn dependence_is_footprint_based() {
        let c = |node, conn| Candidate {
            seq: 0,
            node,
            conn,
            kind: CandidateKind::Recv,
        };
        assert!(dependent(&c(1, None), &c(1, None)));
        assert!(dependent(&c(1, Some(7)), &c(2, Some(7))));
        assert!(!dependent(&c(1, Some(7)), &c(2, Some(8))));
        let timer = Candidate {
            seq: 0,
            node: 3,
            conn: None,
            kind: CandidateKind::Timer { token: 0 },
        };
        assert!(dependent(&timer, &c(9, None)));
    }
}
