//! The analyzer CLI: `cargo run -p analyzer -- --sweep`.
//!
//! Runs the full static-analysis grid — schedule model-checking,
//! posting-order deadlock lints, and engine reachability — and exits
//! non-zero if any invariant is violated. `--quick` shrinks the grid for
//! fast local iteration; `--max-n <N>` caps the group size.

#![forbid(unsafe_code)]

use std::time::Instant;

use analyzer::{sweep, SweepConfig};

fn usage() -> ! {
    eprintln!(
        "usage: analyzer [--sweep] [--quick] [--max-n <N>] [--no-reach]\n\
         \n\
         --sweep      run the full (algorithm, n, k) grid (the default)\n\
         --quick      reduced grid for fast local runs\n\
         --max-n <N>  cap the swept group size\n\
         --no-reach   skip the engine reachability corner"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = SweepConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sweep" => {}
            "--quick" => config = SweepConfig::quick(),
            "--max-n" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                config.max_n = v;
            }
            "--no-reach" => config.reachability = false,
            _ => usage(),
        }
    }

    let start = Instant::now();
    let report = sweep(&config);
    let wall = start.elapsed();
    println!("{report}");
    println!("sweep wall time: {:.3}s", wall.as_secs_f64());
    if !report.is_clean() {
        std::process::exit(1);
    }
}
