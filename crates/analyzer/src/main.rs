//! The analyzer CLI: `cargo run -p analyzer -- --sweep`.
//!
//! Runs the full static-analysis grid — schedule model-checking,
//! posting-order deadlock lints, and engine reachability — and exits
//! non-zero if any invariant is violated. `--quick` shrinks the grid for
//! fast local iteration; `--max-n <N>` caps the group size.
//!
//! `--explore` switches to the dynamic side: the stateless model checker
//! of simulator executions (`analyzer::explore`). `--replay=C1,C2,...`
//! re-runs one recorded choice sequence bit-for-bit and prints the
//! invariant verdict — the loop for reproducing a counterexample a CI
//! exploration reported.

#![forbid(unsafe_code)]

use std::time::Instant;

use analyzer::{
    explore_executions, replay, sweep, ExploreConfig, ExploreScenario, Strategy, SweepConfig,
};
use rdmc::Algorithm;

fn usage() -> ! {
    eprintln!(
        "usage: analyzer [--sweep] [--quick] [--max-n <N>] [--no-reach] [--no-explore]\n\
         \x20      analyzer --explore [--strategy exhaustive|dpor|random] [--n <N>] [--k <K>]\n\
         \x20               [--seed <S>] [--budget <EXECS>] [--faults] [--trace-out <PATH>]\n\
         \x20      analyzer --replay <C1,C2,...> [--n <N>] [--k <K>] [--faults] [--trace-out <PATH>]\n\
         \n\
         --sweep        run the full (algorithm, n, k) grid (the default)\n\
         --quick        reduced grid for fast local runs\n\
         --max-n <N>    cap the swept group size\n\
         --no-reach     skip the engine reachability corner\n\
         --no-explore   skip the execution-exploration tier of the sweep\n\
         \n\
         --explore      model-check simulator executions instead of schedules\n\
         --strategy     exhaustive (default), dpor, or random\n\
         --n, --k       group size and blocks per message (default 4, 2)\n\
         --seed <S>     PRNG seed for --strategy random (default 1)\n\
         --budget <E>   execution cap (default 20000; random walk length)\n\
         --faults       offer crash-injection sites as explorable choices\n\
         --trace-out    write the counterexample's flight-recorder trace (JSONL)\n\
         \n\
         --replay <CS>  re-run one comma-separated choice sequence bit-for-bit"
    );
    std::process::exit(2);
}

struct ExploreArgs {
    explore: bool,
    replay: Option<Vec<usize>>,
    strategy: String,
    n: u32,
    k: u32,
    seed: u64,
    budget: u64,
    faults: bool,
    trace_out: Option<String>,
}

fn scenario_for(args: &ExploreArgs) -> ExploreScenario {
    let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, args.n, args.k);
    if args.faults {
        // One mid-transfer crash site per non-root member, plus the
        // implicit "no fault" branch.
        let sites = (1..args.n as usize).map(|v| (10, v)).collect();
        scenario = scenario.with_faults(sites);
    } else if args.n > 3 {
        // Atomic-delivery status traffic makes exhaustive enumeration
        // intractable beyond n=3; larger groups explore non-atomic.
        scenario.atomic = false;
    }
    scenario
}

fn run_explore(args: &ExploreArgs) -> ! {
    let scenario = scenario_for(args);
    let mut config = match args.strategy.as_str() {
        "exhaustive" => ExploreConfig::exhaustive(scenario),
        "dpor" => ExploreConfig::dpor(scenario),
        "random" => ExploreConfig::random(scenario, args.seed, args.budget),
        _ => usage(),
    };
    if !matches!(config.strategy, Strategy::Random { .. }) {
        config.max_executions = args.budget;
    }
    let start = Instant::now();
    let report = explore_executions(&config);
    let wall = start.elapsed();
    println!("{report}");
    let rate = report.points_resolved as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "explore wall time: {:.3}s ({:.0} choice points/s)",
        wall.as_secs_f64(),
        rate
    );
    if let (Some(path), Some(cex)) = (&args.trace_out, &report.counterexample) {
        std::fs::write(path, &cex.trace_jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("counterexample trace written to {path}");
    }
    std::process::exit(i32::from(!report.is_clean()));
}

fn run_replay(args: &ExploreArgs, script: &[usize]) -> ! {
    let scenario = scenario_for(args);
    let exec = replay(&scenario, script);
    println!(
        "replayed {} choice points, terminal digest {:#018x}",
        exec.points.len(),
        exec.digest
    );
    for p in &exec.points {
        println!(
            "  t={}ns {:?} chose {} of {} candidates",
            p.time_ns,
            p.kind,
            p.chosen,
            p.candidates.len()
        );
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, &exec.trace_jsonl).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("trace written to {path}");
    }
    if exec.violations.is_empty() {
        println!("all invariants hold");
        std::process::exit(0);
    }
    for v in &exec.violations {
        println!("VIOLATION: {v}");
    }
    std::process::exit(1);
}

fn main() {
    let mut config = SweepConfig::default();
    let mut ex = ExploreArgs {
        explore: false,
        replay: None,
        strategy: "exhaustive".to_string(),
        n: 4,
        k: 2,
        seed: 1,
        budget: 20_000,
        faults: false,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sweep" => {}
            "--quick" => config = SweepConfig::quick(),
            "--max-n" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                config.max_n = v;
            }
            "--no-reach" => config.reachability = false,
            "--no-explore" => config.explore = false,
            "--explore" => ex.explore = true,
            "--replay" => {
                let Some(v) = args.next() else { usage() };
                let parsed: Result<Vec<usize>, _> = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::parse)
                    .collect();
                let Ok(script) = parsed else { usage() };
                ex.replay = Some(script);
            }
            "--strategy" => {
                let Some(v) = args.next() else { usage() };
                ex.strategy = v;
            }
            "--n" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                ex.n = v;
            }
            "--k" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                ex.k = v;
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                ex.seed = v;
            }
            "--budget" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                ex.budget = v;
            }
            "--faults" => ex.faults = true,
            "--trace-out" => {
                let Some(v) = args.next() else { usage() };
                ex.trace_out = Some(v);
            }
            s => {
                // `--replay=1,2,3` shorthand.
                if let Some(rest) = s.strip_prefix("--replay=") {
                    let parsed: Result<Vec<usize>, _> = rest
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::parse)
                        .collect();
                    let Ok(script) = parsed else { usage() };
                    ex.replay = Some(script);
                } else {
                    usage();
                }
            }
        }
    }

    if let Some(script) = ex.replay.take() {
        run_replay(&ex, &script);
    }
    if ex.explore {
        run_explore(&ex);
    }

    let start = Instant::now();
    let report = sweep(&config);
    let wall = start.elapsed();
    println!("{report}");
    println!("sweep wall time: {:.3}s", wall.as_secs_f64());
    if !report.is_clean() {
        std::process::exit(1);
    }
}
