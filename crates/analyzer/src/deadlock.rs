//! The posting-order deadlock lint.
//!
//! RDMC pre-posts every receive and gates every send on a ready-for-block
//! credit (§4.2), so a send can never find its receiver unprepared — *if*
//! the schedule lets the credit protocol make progress. This lint checks
//! that statically: it builds the wait-for graph between scheduled sends
//! and the receive postings implied by credit gating, and flags any cycle
//! — a schedule on which every participant waits forever and the fabric's
//! RNR machinery eventually tears the connections down.
//!
//! The graph has one node per scheduled transfer and four edge families
//! (X → Y meaning "X cannot happen until Y has"):
//!
//! 1. **availability** — a relay of block `b` by rank `r` waits for the
//!    transfer that delivers `b` to `r`;
//! 2. **send serialization** — a rank posts its outgoing transfers in
//!    schedule order, so each waits for its predecessor;
//! 3. **credit grant** — the `j`-th arrival from peer `a` at rank `b`
//!    waits for the `(j - w)`-th arrival from `a` (the receiver grants
//!    `w = ready_window` transfers ahead, re-granting as arrivals are
//!    processed);
//! 4. **first arrival** — only the first-block sender is pre-granted at
//!    group creation; every other peer's first transfer waits for the
//!    rank's first arrival (receivers grant the rest of their peers once
//!    the message becomes active).
//!
//! On every valid schedule this graph is acyclic. The lint also measures
//! the *ungated* exposure: dropping the credit edges (families 3–4), how
//! many sends could reach a receiver before the matching receive is
//! posted? That is the RNR-breakage window `verbs::fabric` models
//! dynamically — each such send survives only as long as the retry budget
//! (`rnr_retry_limit`) outlasts the receiver's posting lag.

use std::collections::BTreeMap;

use rdmc::schedule::GlobalSchedule;
use rdmc::Rank;

use crate::model::TraceEntry;

/// What the lint concluded about one schedule.
#[derive(Clone, Debug)]
#[must_use = "check `is_clean()`; an unread report hides deadlock cycles"]
pub struct DeadlockReport {
    /// Human-readable algorithm label.
    pub algorithm: String,
    /// Group size.
    pub n: u32,
    /// Block count.
    pub k: u32,
    /// The ready window the wait-for graph was built for.
    pub ready_window: u32,
    /// Wait-for cycles (each a minimal counterexample: the transfers on
    /// the cycle, in wait order). Any entry is a static RNR deadlock.
    pub cycles: Vec<Vec<TraceEntry>>,
    /// Sends that, even with credit gating, can be posted before their
    /// receive (possible only on corrupted schedules — gating makes the
    /// receive posting a transitive dependency of every send).
    pub premature: Vec<TraceEntry>,
    /// How many sends could arrive before their receive is posted if the
    /// protocol did *not* gate sends on credits — the window §4.2's
    /// design exists to close.
    pub ungated_exposed: usize,
    /// The deepest posting lag (in dependency waves) an ungated send
    /// would have to survive on RNR retries alone.
    pub ungated_max_depth: u32,
    /// The fabric's RNR retry budget the exposure is compared against.
    pub rnr_retry_limit: u32,
}

impl DeadlockReport {
    /// True when the credit-gated protocol cannot deadlock on this
    /// schedule.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty() && self.premature.is_empty()
    }

    /// Whether an ungated run could outlive its retry budget: an exposed
    /// send retries once per `rnr_timer`; if its receive is posted more
    /// dependency waves late than the fabric retries, the connection
    /// breaks. `false` means credit gating is load-bearing for this
    /// schedule even against the retry machinery.
    pub fn ungated_survivable(&self) -> bool {
        self.ungated_max_depth <= self.rnr_retry_limit
    }
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "{} n={} k={}: deadlock-free (w={}, ungated exposure {} sends, depth {} vs {} retries)",
                self.algorithm,
                self.n,
                self.k,
                self.ready_window,
                self.ungated_exposed,
                self.ungated_max_depth,
                self.rnr_retry_limit
            )
        } else {
            writeln!(
                f,
                "{} n={} k={}: {} cycle(s), {} premature send(s)",
                self.algorithm,
                self.n,
                self.k,
                self.cycles.len(),
                self.premature.len()
            )?;
            for cycle in &self.cycles {
                writeln!(f, "  wait-for cycle:")?;
                for t in cycle {
                    writeln!(f, "    {t}")?;
                }
            }
            for t in &self.premature {
                writeln!(f, "  premature send: {t}")?;
            }
            Ok(())
        }
    }
}

/// Per-transfer bookkeeping shared by both graph variants.
struct Graph {
    transfers: Vec<TraceEntry>,
    /// deps[t] = transfers that must happen before `t`.
    deps: Vec<Vec<u32>>,
}

impl Graph {
    /// Longest-path level of every node (`None` if the graph is cyclic).
    fn levels(&self) -> Option<Vec<u32>> {
        let n = self.transfers.len();
        let mut indegree = vec![0u32; n];
        let mut rdeps: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (t, deps) in self.deps.iter().enumerate() {
            indegree[t] = deps.len() as u32;
            for &d in deps {
                rdeps[d as usize].push(t as u32);
            }
        }
        let mut level = vec![0u32; n];
        let mut queue: std::collections::VecDeque<u32> = (0..n as u32)
            .filter(|&t| indegree[t as usize] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(t) = queue.pop_front() {
            seen += 1;
            for &next in &rdeps[t as usize] {
                let cand = level[t as usize] + 1;
                if cand > level[next as usize] {
                    level[next as usize] = cand;
                }
                indegree[next as usize] -= 1;
                if indegree[next as usize] == 0 {
                    queue.push_back(next);
                }
            }
        }
        (seen == n).then_some(level)
    }

    /// One wait-for cycle, if any (iterative DFS; the returned cycle is
    /// the back-edge loop, a minimal witness).
    fn find_cycle(&self) -> Option<Vec<TraceEntry>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.transfers.len();
        let mut color = vec![Color::White; n];
        for root in 0..n {
            if color[root] != Color::White {
                continue;
            }
            // (node, next dep index); `path` mirrors the grey stack.
            let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
            let mut path: Vec<u32> = Vec::new();
            color[root] = Color::Grey;
            path.push(root as u32);
            while let Some(&(node, idx)) = stack.last() {
                if idx < self.deps[node as usize].len() {
                    if let Some(top) = stack.last_mut() {
                        top.1 += 1;
                    }
                    let dep = self.deps[node as usize][idx];
                    match color[dep as usize] {
                        Color::White => {
                            color[dep as usize] = Color::Grey;
                            stack.push((dep, 0));
                            path.push(dep);
                        }
                        Color::Grey => {
                            // Found a cycle: slice the path from `dep`.
                            let start = path
                                .iter()
                                .position(|&p| p == dep)
                                .expect("grey node is on the path");
                            return Some(
                                path[start..]
                                    .iter()
                                    .map(|&t| self.transfers[t as usize])
                                    .collect(),
                            );
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node as usize] = Color::Black;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }
}

/// Builds the wait-for graph and runs the lint. `ready_window` mirrors
/// `EngineConfig::ready_window`; the retry cross-check uses the fabric's
/// default `rnr_retry_limit`.
pub fn lint_schedule(schedule: &GlobalSchedule, ready_window: u32) -> DeadlockReport {
    let w = ready_window.max(1) as usize;
    let transfers: Vec<TraceEntry> = schedule
        .transfers()
        .map(|(step, t)| TraceEntry {
            step,
            from: t.from,
            to: t.to,
            block: t.block,
        })
        .collect();

    // First delivery of (rank, block), outgoing order per rank, incoming
    // order per (receiver, sender), first arrival per rank — all in step
    // order, which is the wire order the engine assumes.
    let mut first_delivery: BTreeMap<(Rank, u32), u32> = BTreeMap::new();
    let mut outgoing: BTreeMap<Rank, Vec<u32>> = BTreeMap::new();
    let mut incoming: BTreeMap<(Rank, Rank), Vec<u32>> = BTreeMap::new();
    let mut first_arrival: BTreeMap<Rank, u32> = BTreeMap::new();
    for (tid, t) in transfers.iter().enumerate() {
        let tid = tid as u32;
        first_delivery.entry((t.to, t.block)).or_insert(tid);
        outgoing.entry(t.from).or_default().push(tid);
        incoming.entry((t.to, t.from)).or_default().push(tid);
        first_arrival.entry(t.to).or_insert(tid);
    }

    let mut base_deps: Vec<Vec<u32>> = vec![Vec::new(); transfers.len()]; // families 1-2
    let mut credit_deps: Vec<Vec<u32>> = vec![Vec::new(); transfers.len()]; // families 3-4

    for out in outgoing.values() {
        for pair in out.windows(2) {
            base_deps[pair[1] as usize].push(pair[0]); // serialization
        }
    }
    for (tid, t) in transfers.iter().enumerate() {
        if t.from != 0 {
            if let Some(&d) = first_delivery.get(&(t.from, t.block)) {
                if d != tid as u32 {
                    base_deps[tid].push(d); // availability
                }
            }
            // No delivery at all: the model checker reports the causality
            // violation; the lint has nothing to hang an edge on.
        }
    }
    for ((to, _from), arrivals) in &incoming {
        for (j, &tid) in arrivals.iter().enumerate() {
            if j >= w {
                credit_deps[tid as usize].push(arrivals[j - w]); // grant window
            } else {
                // Within the initial window: pre-granted only for the
                // rank's overall first sender; everyone else waits for
                // the first arrival to activate the transfer.
                let first = first_arrival[to];
                if first != tid {
                    credit_deps[tid as usize].push(first);
                }
            }
        }
    }

    let gated = Graph {
        transfers: transfers.clone(),
        deps: base_deps
            .iter()
            .zip(&credit_deps)
            .map(|(b, c)| b.iter().chain(c).copied().collect())
            .collect(),
    };

    let mut cycles = Vec::new();
    let mut premature = Vec::new();
    match gated.levels() {
        Some(levels) => {
            // Acyclic: verify no send can beat its receive posting. The
            // receive for arrival `j` is posted when its grant trigger is
            // processed, i.e. at the trigger's level + 1 (level 0 for the
            // pre-granted first window).
            for (tid, t) in transfers.iter().enumerate() {
                let posted_at = credit_deps[tid]
                    .iter()
                    .map(|&d| levels[d as usize] + 1)
                    .max()
                    .unwrap_or(0);
                if levels[tid] < posted_at {
                    premature.push(*t);
                }
            }
        }
        None => {
            if let Some(cycle) = gated.find_cycle() {
                cycles.push(cycle);
            }
        }
    }

    // Ungated exposure: the same schedule run without credit gating —
    // sends race ahead as soon as the data dependencies allow.
    let ungated = Graph {
        transfers: transfers.clone(),
        deps: base_deps,
    };
    let mut ungated_exposed = 0usize;
    let mut ungated_max_depth = 0u32;
    if let Some(levels) = ungated.levels() {
        for tid in 0..transfers.len() {
            let posted_at = credit_deps[tid]
                .iter()
                .map(|&d| levels[d as usize] + 1)
                .max()
                .unwrap_or(0);
            if levels[tid] < posted_at {
                ungated_exposed += 1;
                ungated_max_depth = ungated_max_depth.max(posted_at - levels[tid]);
            }
        }
    }

    DeadlockReport {
        algorithm: schedule.algorithm().to_string(),
        n: schedule.num_nodes(),
        k: schedule.num_blocks(),
        ready_window,
        cycles,
        premature,
        ungated_exposed,
        ungated_max_depth,
        rnr_retry_limit: verbs::FabricParams::default().rnr_retry_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdmc::Algorithm;

    #[test]
    fn generators_are_deadlock_free() {
        for alg in [
            Algorithm::Sequential,
            Algorithm::Chain,
            Algorithm::BinomialTree,
            Algorithm::BinomialPipeline,
        ] {
            for n in [2u32, 5, 8, 16] {
                for k in [1u32, 3, 8] {
                    let g = GlobalSchedule::build(&alg, n, k);
                    let r = lint_schedule(&g, 1);
                    assert!(r.is_clean(), "{r}");
                }
            }
        }
    }

    #[test]
    fn relay_swap_is_a_wait_for_cycle() {
        use rdmc::schedule::GlobalTransfer;
        // Rank 1 sends block 0 to rank 2 before anyone gave it to rank 1;
        // rank 2 "relays" it back. Each transfer's availability depends on
        // the other: a 2-cycle.
        let g = GlobalSchedule::from_custom_steps(
            "relay-swap",
            3,
            1,
            vec![
                vec![GlobalTransfer {
                    from: 1,
                    to: 2,
                    block: 0,
                }],
                vec![GlobalTransfer {
                    from: 2,
                    to: 1,
                    block: 0,
                }],
            ],
        );
        let r = lint_schedule(&g, 1);
        assert_eq!(r.cycles.len(), 1, "{r}");
        assert_eq!(r.cycles[0].len(), 2);
    }
}
