//! The exhaustive `(algorithm, n, k)` sweep: model-checks and
//! deadlock-lints every generator over the full grid, runs the engine
//! reachability proof on the small corner where exhaustive state
//! enumeration is feasible, and model-checks the recovery planner's
//! resume schedules over every wedge point of the binomial pipeline.

use std::collections::BTreeSet;

use rdmc::schedule::GlobalSchedule;
use rdmc::Algorithm;
use recovery::{plan_message_resume, survivor_map, MessagePlan};

use crate::deadlock::{lint_schedule, DeadlockReport};
use crate::explore::{explore_executions, ExploreConfig, ExploreReport, ExploreScenario};
use crate::model::{check_schedule, ModelReport, Violation};
use crate::reach::{explore, ReachConfig, ReachReport};
use crate::resume::check_resume_schedule;

/// Grid parameters for one sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Largest group size checked (the schedule grid runs `n` from 1 up
    /// to this, every size — powers of two and not).
    pub max_n: u32,
    /// Block counts checked at every `n`.
    pub ks: Vec<u32>,
    /// Rack counts for the hybrid variants (each paired with a round-robin
    /// and a skewed rack assignment).
    pub rack_counts: Vec<u32>,
    /// Ready windows the deadlock lint is run for.
    pub ready_windows: Vec<u32>,
    /// Whether to run the engine reachability corner.
    pub reachability: bool,
    /// Whether to model-check recovery resume schedules (binomial
    /// pipelines cut at every step, every failure pattern).
    pub resume: bool,
    /// Whether to run the execution-exploration tier: exhaustive
    /// interleaving enumeration of the simulator on the small corner
    /// (see [`mod@crate::explore`]).
    pub explore: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_n: 64,
            ks: vec![1, 2, 3, 4, 5, 8, 16, 32],
            rack_counts: vec![2, 3, 4, 8],
            ready_windows: vec![1, 2],
            reachability: true,
            resume: true,
            explore: true,
        }
    }
}

impl SweepConfig {
    /// A reduced grid for quick local runs (`--quick`).
    pub fn quick() -> Self {
        SweepConfig {
            max_n: 20,
            ks: vec![1, 2, 5, 8],
            rack_counts: vec![2, 3],
            ready_windows: vec![1],
            reachability: true,
            resume: true,
            explore: true,
        }
    }
}

/// Everything a sweep found.
#[derive(Clone, Debug, Default)]
#[must_use = "check `is_clean()`; an unread report hides violations"]
pub struct SweepReport {
    /// Schedules model-checked.
    pub schedules_checked: usize,
    /// Schedules deadlock-linted (one entry per ready window).
    pub lints_run: usize,
    /// Reachability configurations explored.
    pub reach_runs: usize,
    /// Total states visited across reachability runs.
    pub reach_states: usize,
    /// Resume plans model-checked (wedge point x failure pattern).
    pub resumes_checked: usize,
    /// Execution explorations run (scenario count).
    pub explore_runs: usize,
    /// Simulator executions enumerated across explorations.
    pub explore_executions: u64,
    /// Model-checker reports with violations.
    pub model_failures: Vec<ModelReport>,
    /// Deadlock reports with cycles or premature sends.
    pub deadlock_failures: Vec<DeadlockReport>,
    /// Reachability reports with stuck states, engine errors, or
    /// truncation.
    pub reach_failures: Vec<ReachReport>,
    /// Resume-schedule reports with violations (including planner
    /// verdicts that disagree with ground-truth block coverage).
    pub resume_failures: Vec<ModelReport>,
    /// Execution explorations with a counterexample or truncation.
    pub explore_failures: Vec<ExploreReport>,
}

impl SweepReport {
    /// True when the whole grid is proven clean.
    pub fn is_clean(&self) -> bool {
        self.model_failures.is_empty()
            && self.deadlock_failures.is_empty()
            && self.reach_failures.is_empty()
            && self.resume_failures.is_empty()
            && self.explore_failures.is_empty()
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "swept {} schedules, {} deadlock lints, {} reachability runs ({} states), \
             {} resume plans, {} explorations ({} executions)",
            self.schedules_checked,
            self.lints_run,
            self.reach_runs,
            self.reach_states,
            self.resumes_checked,
            self.explore_runs,
            self.explore_executions
        )?;
        if self.is_clean() {
            write!(f, "all invariants hold")
        } else {
            for r in &self.model_failures {
                writeln!(f, "MODEL: {r}")?;
            }
            for r in &self.deadlock_failures {
                writeln!(f, "DEADLOCK: {r}")?;
            }
            for r in &self.reach_failures {
                writeln!(f, "REACH: {r}")?;
            }
            for r in &self.resume_failures {
                writeln!(f, "RESUME: {r}")?;
            }
            for r in &self.explore_failures {
                writeln!(f, "EXPLORE: {r}")?;
            }
            write!(
                f,
                "{} model / {} deadlock / {} reachability / {} resume / {} explore failure(s)",
                self.model_failures.len(),
                self.deadlock_failures.len(),
                self.reach_failures.len(),
                self.resume_failures.len(),
                self.explore_failures.len()
            )
        }
    }
}

/// The algorithms checked at group size `n`: the four flat generators
/// plus, for every configured rack count below `n`, a round-robin and a
/// skewed hybrid assignment in both phased and pipelined variants.
fn algorithms_for(n: u32, rack_counts: &[u32]) -> Vec<Algorithm> {
    let mut algs = vec![
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ];
    for &nr in rack_counts {
        if nr >= n.max(1) {
            continue;
        }
        // Round-robin: racks interleave through the rank space.
        let round_robin: Vec<u32> = (0..n).map(|r| r % nr).collect();
        // Skewed: rack 0 holds half the group, the rest split the rest —
        // exercises unequal rack sizes and non-power-of-two leader counts.
        let skewed: Vec<u32> = (0..n)
            .map(|r| {
                if r < n / 2 {
                    0
                } else {
                    1 + (r - n / 2) % (nr - 1).max(1)
                }
            })
            .collect();
        for rack_of in [round_robin, skewed] {
            algs.push(Algorithm::Hybrid {
                rack_of: rack_of.clone(),
            });
            algs.push(Algorithm::HybridPipelined { rack_of });
        }
    }
    algs
}

/// Runs the full static sweep. Every violation is collected, none
/// short-circuits the grid.
pub fn sweep(config: &SweepConfig) -> SweepReport {
    let mut report = SweepReport::default();
    for n in 1..=config.max_n {
        for alg in algorithms_for(n, &config.rack_counts) {
            for &k in &config.ks {
                let g = match GlobalSchedule::try_build(&alg, n, k) {
                    Ok(g) => g,
                    Err(e) => {
                        // A generator refusing a legal shape is itself a
                        // violation; record and continue.
                        report.model_failures.push(ModelReport {
                            algorithm: alg.to_string(),
                            n,
                            k,
                            violations: vec![crate::model::Violation::BuildRejected {
                                reason: e.to_string(),
                            }],
                        });
                        continue;
                    }
                };
                report.schedules_checked += 1;
                let m = check_schedule(&g);
                if !m.is_clean() {
                    report.model_failures.push(m);
                }
                for &w in &config.ready_windows {
                    report.lints_run += 1;
                    let d = lint_schedule(&g, w);
                    if !d.is_clean() {
                        report.deadlock_failures.push(d);
                    }
                }
            }
        }
    }

    if config.reachability {
        for (alg, n, k) in reach_grid() {
            if n > config.max_n {
                continue;
            }
            let r = explore(&ReachConfig {
                algorithm: alg,
                n,
                k,
                ready_window: 1,
                max_outstanding_sends: 1,
                max_states: 2_000_000,
            });
            report.reach_runs += 1;
            report.reach_states += r.states;
            if !r.is_clean() {
                report.reach_failures.push(r);
            }
        }
    }

    if config.resume {
        sweep_resume(&mut report, config.max_n);
    }

    if config.explore {
        sweep_explore(&mut report, config.max_n);
    }
    report
}

/// The execution-exploration tier: exhaustive interleaving enumeration
/// of the simulator on the small corner — atomic delivery at `n = 3`,
/// non-atomic at `n = 4` (status-write traffic makes atomic `n = 4`
/// enumeration intractable; randomized CI walks cover it instead).
fn sweep_explore(report: &mut SweepReport, max_n: u32) {
    for (n, k, atomic) in [(3, 1, true), (3, 2, true), (4, 1, false), (4, 2, false)] {
        if n > max_n {
            continue;
        }
        let mut scenario = ExploreScenario::small(Algorithm::BinomialPipeline, n, k);
        scenario.atomic = atomic;
        let r = explore_executions(&ExploreConfig::exhaustive(scenario));
        report.explore_runs += 1;
        report.explore_executions += r.executions;
        if !r.is_clean() || r.truncated {
            report.explore_failures.push(r);
        }
    }
}

/// Model-checks the recovery planner over every wedge point of the
/// binomial pipeline: for each `(n, k)` on the grid, cut the schedule at
/// every step boundary, fail every single rank (and every rank pair at
/// small `n` — concurrent failures), plan the survivors' resume, and
/// check it against the wedge-time holdings. Planner verdicts are also
/// cross-checked against ground truth: `Unrecoverable` must coincide
/// exactly with a block losing its last copy.
fn sweep_resume(report: &mut SweepReport, max_n: u32) {
    for n in 2..=max_n.min(10) {
        for k in [1u32, 2, 4, 8] {
            let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, n, k);
            for cut in 0..=g.num_steps() {
                // Holdings at the wedge: everything delivered in steps
                // strictly before `cut` (the root holds all from the
                // start).
                let mut held: Vec<Vec<bool>> = vec![vec![false; k as usize]; n as usize];
                held[0] = vec![true; k as usize];
                for j in 0..cut {
                    for t in g.step(j) {
                        held[t.to as usize][t.block as usize] = true;
                    }
                }
                let mut failure_sets: Vec<BTreeSet<u32>> =
                    (0..n).map(|f| BTreeSet::from([f])).collect();
                if (3..=6).contains(&n) {
                    for a in 0..n {
                        for b in a + 1..n {
                            failure_sets.push(BTreeSet::from([a, b]));
                        }
                    }
                }
                for failed in failure_sets {
                    let survivors = survivor_map(n, &failed);
                    let holdings: Vec<Vec<bool>> = survivors
                        .iter()
                        .map(|&r| held[r as usize].clone())
                        .collect();
                    let covered = (0..k as usize).all(|b| holdings.iter().any(|h| h[b]));
                    report.resumes_checked += 1;
                    match plan_message_resume(&holdings) {
                        MessagePlan::Resume { schedule, .. } => {
                            if !covered {
                                report.resume_failures.push(ModelReport {
                                    algorithm: "resume:planner-verdict".into(),
                                    n,
                                    k,
                                    violations: vec![Violation::BuildRejected {
                                        reason: format!(
                                            "planner resumed despite a lost block \
                                             (cut {cut}, failed {failed:?})"
                                        ),
                                    }],
                                });
                                continue;
                            }
                            let r = check_resume_schedule(&schedule, &holdings);
                            if !r.is_clean() {
                                report.resume_failures.push(r);
                            }
                        }
                        MessagePlan::Unrecoverable => {
                            if covered {
                                report.resume_failures.push(ModelReport {
                                    algorithm: "resume:planner-verdict".into(),
                                    n,
                                    k,
                                    violations: vec![Violation::BuildRejected {
                                        reason: format!(
                                            "planner gave up on a covered message \
                                             (cut {cut}, failed {failed:?})"
                                        ),
                                    }],
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The reachability corner: small shapes covering every schedule
/// topology's structure — a pure relay chain, a power-of-two pipeline, a
/// shadow-vertex (non-power-of-two) pipeline, a tree, and both hybrid
/// variants with a rack leader relaying across racks.
fn reach_grid() -> Vec<(Algorithm, u32, u32)> {
    let two_racks = |n: u32| -> Vec<u32> { (0..n).map(|r| u32::from(r >= n / 2)).collect() };
    vec![
        (Algorithm::Sequential, 3, 2),
        (Algorithm::Chain, 4, 2),
        (Algorithm::BinomialTree, 4, 2),
        (Algorithm::BinomialPipeline, 2, 2),
        (Algorithm::BinomialPipeline, 4, 2),
        (Algorithm::BinomialPipeline, 3, 2), // shadow vertex
        (Algorithm::BinomialPipeline, 5, 1), // shadow vertex
        (
            Algorithm::Hybrid {
                rack_of: two_racks(4),
            },
            4,
            2,
        ),
        (
            Algorithm::HybridPipelined {
                rack_of: two_racks(4),
            },
            4,
            2,
        ),
    ]
}
