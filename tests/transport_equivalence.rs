//! The same protocol engine runs over simulated RDMA and over real TCP;
//! these tests check the two transports agree on *what* happens (delivery
//! sets, ordering, failure semantics), leaving *how fast* to the fabric.

use std::sync::mpsc;

use rdmc::Algorithm;
use rdmc_repro::*;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use rdmc_tcp::{GroupConfig, LocalCluster};

const KB: u64 = 1 << 10;

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ]
}

/// Both transports deliver the same number of completions, in the same
/// per-member order, for a mixed-size message sequence.
#[test]
fn both_transports_deliver_identical_message_sequences() {
    let n = 5usize;
    let sizes: Vec<u64> = vec![10 * KB, 1, 64 * KB, 3 * KB];
    for alg in algorithms() {
        // Simulated RDMA.
        let mut sim = ClusterBuilder::new(ClusterSpec::fractus(n)).build();
        let group = sim.create_group(GroupSpec {
            members: (0..n).collect(),
            algorithm: alg.clone(),
            block_size: 4 * KB,
            ready_window: 3,
            max_outstanding_sends: 3,
        });
        for &s in &sizes {
            sim.submit_send(group, s);
        }
        sim.run();
        assert!(sim.all_quiescent(), "{alg}: sim not quiescent");
        let sim_deliveries = sim.message_results().len();
        assert_eq!(sim_deliveries, sizes.len());

        // Real TCP.
        let tcp = LocalCluster::launch(n).unwrap();
        let (tx, rx) = mpsc::channel();
        for node in tcp.nodes() {
            let tx = tx.clone();
            let id = node.id();
            assert!(node.create_group(
                1,
                GroupConfig {
                    algorithm: alg.clone(),
                    block_size: 4 * KB,
                    ..GroupConfig::new((0..n as u32).collect())
                },
                Box::new(|size| vec![0; size as usize]),
                Box::new(move |data| tx.send((id, data.len() as u64)).unwrap()),
            ));
        }
        for &s in &sizes {
            let payload: Vec<u8> = (0..s).map(|i| (i % 256) as u8).collect();
            assert!(tcp.nodes()[0].send(1, payload));
        }
        let mut per_node: Vec<Vec<u64>> = vec![Vec::new(); n];
        for _ in 0..n * sizes.len() {
            let (node, len) = rx
                .recv_timeout(std::time::Duration::from_secs(15))
                .unwrap_or_else(|_| panic!("{alg}: TCP delivery timed out"));
            per_node[node as usize].push(len);
        }
        for (node, got) in per_node.iter().enumerate() {
            assert_eq!(got, &sizes, "{alg}: node {node} size sequence differs");
        }
        for node in tcp.nodes() {
            assert!(node.destroy_group(1), "{alg}: close must be clean");
        }
        tcp.shutdown();
    }
}

/// The §4.6 close guarantee, on both transports: a clean close implies
/// every message reached every destination; a failure makes the close
/// report it.
#[test]
fn close_barrier_semantics_match() {
    // Simulated: quiescent after a clean run.
    let mut sim = ClusterBuilder::new(ClusterSpec::fractus(4)).build();
    let group = sim.create_group(GroupSpec {
        members: (0..4).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: 8 * KB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    sim.submit_send(group, 100 * KB);
    sim.run();
    assert!(sim.all_quiescent());

    // TCP: destroy returns true on the same clean history.
    let tcp = LocalCluster::launch(4).unwrap();
    let (tx, rx) = mpsc::channel();
    for node in tcp.nodes() {
        let tx = tx.clone();
        assert!(node.create_group(
            2,
            GroupConfig {
                block_size: 8 * KB,
                ..GroupConfig::new(vec![0, 1, 2, 3])
            },
            Box::new(|size| vec![0; size as usize]),
            Box::new(move |data| tx.send(data.len()).unwrap()),
        ));
    }
    assert!(tcp.nodes()[0].send(2, vec![7; 100 * KB as usize]));
    for _ in 0..4 {
        rx.recv_timeout(std::time::Duration::from_secs(15)).unwrap();
    }
    for node in tcp.nodes() {
        assert!(node.destroy_group(2));
    }
    tcp.shutdown();
}

/// Failure propagation: on the simulated fabric a crash wedges all
/// survivors; over TCP a vanished peer makes the close barrier report an
/// unclean history.
#[test]
fn failure_surfaces_on_both_transports() {
    // Simulated fabric.
    let mut sim = ClusterBuilder::new(ClusterSpec::fractus(6)).build();
    let group = sim.create_group(GroupSpec {
        members: (0..6).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: 1 << 20,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    sim.submit_send(group, 128 << 20);
    sim.schedule_crash_at(3, simnet::SimTime::from_nanos(1_500_000));
    sim.run();
    assert_eq!(sim.wedged_members(group).len(), 5);

    // TCP.
    let tcp = LocalCluster::launch(3).unwrap();
    for node in tcp.nodes() {
        assert!(node.create_group(
            3,
            GroupConfig::new(vec![0, 1, 2]),
            Box::new(|size| vec![0; size as usize]),
            Box::new(|_| {}),
        ));
    }
    tcp.nodes()[1].shutdown(); // node 1 silently disappears
    assert!(
        !tcp.nodes()[0].destroy_group(3),
        "close must report the lost member"
    );
    tcp.shutdown();
}
