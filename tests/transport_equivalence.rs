//! The standing transport-equivalence gate: the same protocol
//! orchestration runs over the simulated verbs fabric and over real TCP
//! sockets, and the two must agree **bit-for-bit** on *what* happened —
//! the engine event logs and the delivery digests — leaving only *when*
//! to the fabric.
//!
//! Raw engine logs interleave differently across transports (wall-clock
//! completion timing is not virtual-time completion timing), but RDMC's
//! §4.2 design makes each *channel* deterministic: per (group, rank,
//! event class, peer) the sequence of events is fixed by the block
//! schedule and the per-connection FIFO guarantee. Canonicalizing the
//! log per channel therefore yields a transport-independent fingerprint
//! that any lost, duplicated, reordered, or misrouted event breaks.
//!
//! On mismatch each test writes both canonical logs under
//! `target/transport_equivalence/` so CI can upload them as artifacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rdmc::engine::Event;
use rdmc::{Algorithm, Rank};
use rdmc_sim::{
    Cluster, ClusterBuilder, ClusterSpec, EngineLogEntry, GroupId, GroupSpec, PacerConfig,
    PacingPolicy, RecoveryConfig,
};
use simnet::SimDuration;
use verbs::Transport;

const KB: u64 = 1 << 10;
const BLOCK: u64 = 16 * KB;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Sequential,
    Algorithm::Chain,
    Algorithm::BinomialTree,
    Algorithm::BinomialPipeline,
];

fn spec(n: usize, algorithm: Algorithm) -> GroupSpec {
    GroupSpec {
        members: (0..n).collect(),
        algorithm,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    }
}

/// Collapses an engine log into its per-channel canonical form: one
/// line per (group, rank, class, peer) channel listing that channel's
/// events in log order. Within a channel the order is fixed by the
/// protocol, so equal canonical logs mean equal protocol executions.
fn canonicalize(log: &[EngineLogEntry]) -> String {
    let mut channels: BTreeMap<(GroupId, Rank, &'static str, i64), Vec<String>> = BTreeMap::new();
    for entry in log {
        let (class, peer, detail) = match entry.event {
            Event::StartSend { size } => ("start", -1, format!("{size}")),
            Event::BlockReceived { from, total_size } => {
                ("block", i64::from(from), format!("{total_size}"))
            }
            Event::ReadyReceived { from } => ("ready", i64::from(from), String::new()),
            Event::SendCompleted { to } => ("sendc", i64::from(to), String::new()),
            Event::PeerFailed { rank } => ("fail", i64::from(rank), String::new()),
        };
        channels
            .entry((entry.group, entry.rank, class, peer))
            .or_default()
            .push(detail);
    }
    let mut out = String::new();
    for ((group, rank, class, peer), events) in channels {
        let _ = writeln!(
            out,
            "g{group} r{rank} {class} p{peer} n{} [{}]",
            events.len(),
            events.join(",")
        );
    }
    out
}

/// Time-free delivery digest: which message reached which member, per
/// group in send order — the observable the paper's reliability claims
/// are about.
fn delivery_digest<T: Transport>(cluster: &Cluster<T>) -> String {
    let mut out = String::new();
    for r in cluster.message_results() {
        let delivered: String = r
            .delivered_at
            .iter()
            .map(|d| if d.is_some() { 'y' } else { 'n' })
            .collect();
        let _ = writeln!(
            out,
            "g{} i{} size={} delivered={delivered}",
            r.group, r.index, r.size
        );
    }
    out
}

/// Asserts both fingerprints match, dumping them for CI on divergence.
fn assert_equivalent(name: &str, sim: &(String, String), tcp: &(String, String)) {
    if sim == tcp {
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/transport_equivalence");
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        dir.join(format!("{name}.sim.log")),
        format!("{}{}", sim.0, sim.1),
    );
    let _ = std::fs::write(
        dir.join(format!("{name}.tcp.log")),
        format!("{}{}", tcp.0, tcp.1),
    );
    assert_eq!(
        sim, tcp,
        "{name}: transports diverged (canonical logs dumped to target/transport_equivalence/)"
    );
}

/// One mixed-size multicast workload, returning the canonical engine
/// log and the delivery digest.
fn plain_workload<T: Transport>(mut cluster: Cluster<T>, algorithm: Algorithm) -> (String, String) {
    let group = cluster.create_group(spec(5, algorithm));
    for size in [4 * BLOCK, 1, 6 * BLOCK + 17] {
        cluster.submit_send(group, size);
    }
    cluster.run();
    assert!(cluster.all_quiescent(), "workload failed to quiesce");
    (
        canonicalize(cluster.engine_log()),
        delivery_digest(&cluster),
    )
}

/// All four algorithms: identical engine event logs and delivery
/// digests over simulated verbs and over real TCP.
#[test]
fn all_algorithms_equivalent_across_transports() {
    for algorithm in ALGORITHMS {
        let sim = plain_workload(
            ClusterBuilder::new(ClusterSpec::fractus(5))
                .engine_log()
                .build(),
            algorithm.clone(),
        );
        let tcp = plain_workload(
            rdmc_tcp::builder(5)
                .expect("tcp launch")
                .engine_log()
                .build(),
            algorithm.clone(),
        );
        assert_equivalent(&format!("plain_{algorithm:?}"), &sim, &tcp);
    }
}

/// Pacer admission (FIFO, bounded inflight) composes identically with
/// both transports.
fn paced_workload<T: Transport>(mut cluster: Cluster<T>) -> (String, String) {
    let group = cluster.create_group(spec(4, Algorithm::BinomialPipeline));
    for _ in 0..3 {
        cluster.submit_send(group, 5 * BLOCK);
    }
    cluster.run();
    assert!(cluster.all_quiescent(), "paced workload failed to quiesce");
    (
        canonicalize(cluster.engine_log()),
        delivery_digest(&cluster),
    )
}

#[test]
fn paced_workload_equivalent_across_transports() {
    let pacing = PacerConfig::new(1, PacingPolicy::Fifo);
    let sim = paced_workload(
        ClusterBuilder::new(ClusterSpec::fractus(4))
            .engine_log()
            .pacing(pacing)
            .build(),
    );
    let tcp = paced_workload(
        rdmc_tcp::builder(4)
            .expect("tcp launch")
            .engine_log()
            .pacing(pacing)
            .build(),
    );
    assert_equivalent("paced_fifo", &sim, &tcp);
}

/// The crash/recovery case: a message completes, a non-root member
/// fail-stops at quiescence, epoch recovery reconfigures, and a second
/// message reaches the survivors — identically on both transports.
fn recovery_workload<T: Transport>(mut cluster: Cluster<T>) -> (String, String) {
    let group = cluster.create_group(spec(5, Algorithm::BinomialPipeline));
    cluster.submit_send(group, 4 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent(), "first message failed to quiesce");

    cluster.crash_now(3);
    cluster.run(); // detection, gossip, epoch agreement, reconfiguration

    cluster.submit_send(group, 3 * BLOCK);
    cluster.run();
    assert!(cluster.live_quiescent(), "survivors failed to quiesce");
    assert_eq!(
        cluster.surviving_ranks(group),
        vec![0, 1, 2, 4],
        "recovery installed the wrong view"
    );
    (
        canonicalize(cluster.engine_log()),
        delivery_digest(&cluster),
    )
}

#[test]
fn crash_recovery_equivalent_across_transports() {
    // A generous grace keeps wall-clock failure detection (TCP) and
    // virtual-time detection (sim) on the same side of every protocol
    // deadline.
    let recovery = RecoveryConfig {
        grace: SimDuration::from_millis(100),
        ..RecoveryConfig::default()
    };
    let sim = recovery_workload(
        ClusterBuilder::new(ClusterSpec::fractus(5))
            .engine_log()
            .recovery(recovery.clone())
            .build(),
    );
    let tcp = recovery_workload(
        rdmc_tcp::builder(5)
            .expect("tcp launch")
            .engine_log()
            .recovery(recovery)
            .build(),
    );
    assert_equivalent("crash_recovery", &sim, &tcp);
}
