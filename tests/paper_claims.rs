//! Cross-crate integration tests asserting the paper's headline claims
//! hold on this reproduction (shapes and factors, not absolute numbers).

use baselines::run_mvapich_multicast;
use rdmc::{analysis, Algorithm};
use rdmc_repro::*; // re-exports every member crate
use rdmc_sim::{run_single_multicast, ClusterSpec};

const MB: u64 = 1 << 20;

/// §5.2 / Fig. 4: "MVAPICH falls in between, taking from 1.03x to 3x as
/// long as binomial pipeline."
#[test]
fn mvapich_is_between_1x_and_a_few_x_of_the_pipeline() {
    let spec = ClusterSpec::fractus(16);
    for (n, size) in [(4usize, 64 * MB), (8, 64 * MB), (16, 8 * MB)] {
        let pipe = run_single_multicast(&spec, n, Algorithm::BinomialPipeline, size, MB).latency;
        let mpi = run_mvapich_multicast(&spec, n, size, MB).latency;
        let ratio = mpi.as_secs_f64() / pipe.as_secs_f64();
        assert!(
            (1.0..=4.0).contains(&ratio),
            "n={n} size={size}: MVAPICH/pipeline ratio {ratio}"
        );
    }
}

/// §7: "one can have 4 or 8 replicas for nearly the same price as for 1".
#[test]
fn a_few_replicas_cost_nearly_the_same_as_one() {
    let spec = ClusterSpec::fractus(16);
    let one = run_single_multicast(&spec, 2, Algorithm::BinomialPipeline, 128 * MB, MB).latency;
    let eight = run_single_multicast(&spec, 9, Algorithm::BinomialPipeline, 128 * MB, MB).latency;
    let ratio = eight.as_secs_f64() / one.as_secs_f64();
    assert!(
        ratio < 1.6,
        "8 replicas should cost nearly the same as 1, got {ratio}x"
    );
}

/// §5.2: sequential send degrades linearly; the pipeline sub-linearly.
#[test]
fn sequential_is_linear_pipeline_is_flat() {
    let spec = ClusterSpec::fractus(16);
    let seq4 = run_single_multicast(&spec, 4, Algorithm::Sequential, 32 * MB, MB).latency;
    let seq16 = run_single_multicast(&spec, 16, Algorithm::Sequential, 32 * MB, MB).latency;
    let seq_growth = seq16.as_secs_f64() / seq4.as_secs_f64();
    assert!(
        (3.5..=6.5).contains(&seq_growth),
        "sequential 4->16 should grow ~5x (15/3 links), got {seq_growth}"
    );
    let pipe4 = run_single_multicast(&spec, 4, Algorithm::BinomialPipeline, 32 * MB, MB).latency;
    let pipe16 = run_single_multicast(&spec, 16, Algorithm::BinomialPipeline, 32 * MB, MB).latency;
    let pipe_growth = pipe16.as_secs_f64() / pipe4.as_secs_f64();
    assert!(
        pipe_growth < 2.0,
        "pipeline 4->16 should grow far less than 4x, got {pipe_growth}"
    );
}

/// §4.4: completion in `log2(n) + k - 1` steps, every block delivered
/// exactly once — across the full algorithm portfolio.
#[test]
fn schedule_invariants_hold_for_all_algorithms() {
    use rdmc::schedule::GlobalSchedule;
    for alg in [
        Algorithm::Sequential,
        Algorithm::Chain,
        Algorithm::BinomialTree,
        Algorithm::BinomialPipeline,
    ] {
        for n in [2u32, 5, 16, 33] {
            let g = GlobalSchedule::build(&alg, n, 10);
            g.validate().unwrap_or_else(|e| panic!("{alg} n={n}: {e}"));
        }
    }
    let g = GlobalSchedule::build(&Algorithm::BinomialPipeline, 64, 100);
    assert_eq!(g.num_steps(), 6 + 99);
}

/// §4.5: the slack constant — the mechanism behind delay tolerance.
#[test]
fn slack_formula_matches_generated_schedules() {
    for n in [8u32, 32] {
        let g = rdmc::schedule::GlobalSchedule::build(&Algorithm::BinomialPipeline, n, 16);
        for j in analysis::steady_steps(n, 16) {
            let measured = analysis::empirical_avg_slack(&g, j).expect("senders");
            assert!((measured - analysis::predicted_avg_slack(n)).abs() < 1e-9);
        }
    }
}

/// §4.6: SST beats RDMC for small messages in small groups; RDMC wins
/// beyond the crossover.
#[test]
fn sst_crossover_matches_the_paper() {
    let sst_small = sst::small_message_rate(4, 1 << 10, 200, 16);
    let sst_large_group = sst::small_message_rate(32, 100 << 10, 100, 16);

    let rdmc_rate = |n: usize, size: u64, count: usize| {
        let mut cluster = rdmc_sim::ClusterBuilder::new(ClusterSpec::fractus(32)).build();
        let group = cluster.create_group(rdmc_sim::GroupSpec {
            members: (0..n).collect(),
            algorithm: Algorithm::BinomialPipeline,
            block_size: MB,
            ready_window: 3,
            max_outstanding_sends: 3,
        });
        for _ in 0..count {
            cluster.submit_send(group, size);
        }
        cluster.run();
        let end = cluster
            .message_results()
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
            .expect("deliveries");
        count as f64 / end.as_secs_f64()
    };
    let rdmc_small = rdmc_rate(4, 1 << 10, 200);
    assert!(
        sst_small > 2.5 * rdmc_small,
        "SST should win clearly for 1 KB x 4 members: {sst_small} vs {rdmc_small}"
    );
    let rdmc_large_group = rdmc_rate(32, 100 << 10, 100);
    assert!(
        rdmc_large_group > sst_large_group,
        "RDMC should win for 100 KB x 32 members: {rdmc_large_group} vs {sst_large_group}"
    );
}

/// §2 / Fig. 12: offloading the chain's relay graph onto the NIC gives a
/// small but real edge over software relays.
#[test]
fn core_direct_offload_has_an_edge() {
    let spec = ClusterSpec::fractus(8);
    let off = rdmc_sim::run_offloaded_chain(spec.build(), &[0, 1, 2, 3, 4, 5], 64 * MB, MB);
    let sw = run_single_multicast(&spec, 6, Algorithm::Chain, 64 * MB, MB).latency;
    let speedup = sw.as_secs_f64() / off.as_secs_f64();
    assert!(
        (1.0..1.5).contains(&speedup),
        "offload speedup should be a modest edge, got {speedup}"
    );
}

/// The Cosmos workload's published statistics are reproduced by the
/// synthesiser feeding the Fig. 9 experiment.
#[test]
fn cosmos_synthesis_matches_published_stats() {
    let trace = workloads::CosmosTrace::default();
    let writes = trace.generate(20_000);
    let mut sizes: Vec<f64> = writes.iter().map(|w| w.size as f64).collect();
    sizes.sort_by(f64::total_cmp);
    let median = sizes[sizes.len() / 2];
    assert!((median / 12e6 - 1.0).abs() < 0.15, "median {median}");
    assert_eq!(trace.all_groups().len(), 455);
}
