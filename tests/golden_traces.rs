//! Golden-trace regression tests: the complete flight recording of one
//! small multicast per algorithm, serialized as JSONL, compared
//! bit-for-bit against a checked-in golden file. Any change to event
//! ordering, timing, schedules, or the serialization format shows up as
//! a diff here.
//!
//! The simulation is fully deterministic (virtual time, no OS clocks),
//! so these files are stable across machines and CI runs.
//!
//! To regenerate after an intentional protocol or format change:
//!
//! ```text
//! RDMC_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then review the diff of `tests/golden/*.jsonl` like any other code
//! change.

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};

const BLOCK: u64 = 64 << 10;

/// One 4-member, 4-block multicast on the Fractus preset with a full
/// flight recording, exported as JSONL.
fn traced_jsonl(algorithm: Algorithm) -> String {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(4))
        .flight_recorder(trace::Mode::Full)
        .build();
    let recorder = cluster.recorder().clone();
    let group = cluster.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm,
        block_size: BLOCK,
        ready_window: 2,
        max_outstanding_sends: 2,
    });
    cluster.submit_send(group, 4 * BLOCK);
    cluster.run();
    assert!(cluster.all_quiescent());
    trace::export::to_jsonl(&recorder.events())
}

fn check_golden(name: &str, algorithm: Algorithm) {
    let path = format!("{}/tests/golden/{name}.jsonl", env!("CARGO_MANIFEST_DIR"));
    let got = traced_jsonl(algorithm);
    if std::env::var_os("RDMC_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e}; run with RDMC_BLESS=1 to create"));
    if got != want {
        let first_diff = got
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || {
                    format!(
                        "line counts differ: {} vs {}",
                        got.lines().count(),
                        want.lines().count()
                    )
                },
                |i| {
                    format!(
                        "first divergence at line {}:\n  got:  {}\n  want: {}",
                        i + 1,
                        got.lines().nth(i).unwrap_or(""),
                        want.lines().nth(i).unwrap_or("")
                    )
                },
            );
        panic!(
            "{name} trace diverged from golden ({first_diff})\n\
             If the change is intentional, regenerate with \
             RDMC_BLESS=1 cargo test --test golden_traces"
        );
    }
}

#[test]
fn golden_sequential() {
    check_golden("sequential", Algorithm::Sequential);
}

#[test]
fn golden_binomial_tree() {
    check_golden("binomial_tree", Algorithm::BinomialTree);
}

#[test]
fn golden_chain() {
    check_golden("chain", Algorithm::Chain);
}

#[test]
fn golden_binomial_pipeline() {
    check_golden("binomial_pipeline", Algorithm::BinomialPipeline);
}

/// The golden runs are reproducible within a process too: two identical
/// runs produce byte-identical exports (guards against any hidden
/// global state sneaking into the recorder or the simulator).
#[test]
fn golden_runs_are_deterministic_in_process() {
    let a = traced_jsonl(Algorithm::BinomialPipeline);
    let b = traced_jsonl(Algorithm::BinomialPipeline);
    assert_eq!(a, b);
}
