//! Derecho-style atomic delivery on top of RDMC (paper §1 and §4.6):
//! "RDMC can also be extended to offer stronger semantics... receivers
//! buffer messages and exchange status information. Delivery occurs when
//! RDMC messages are known to have reached all destinations. No loss of
//! bandwidth is experienced, and the added delay is surprisingly small."
//!
//! This example measures exactly that trade on the simulated fabric: the
//! same message stream with plain RDMC delivery vs stability-gated
//! delivery.
//!
//! ```sh
//! cargo run --release --example atomic_broadcast
//! ```

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};

const MB: u64 = 1 << 20;
const MESSAGES: usize = 10;
const SIZE: u64 = 16 * MB;

fn run(atomic: bool) -> (f64, f64) {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(8)).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    if atomic {
        cluster.enable_atomic_delivery(group);
    }
    for _ in 0..MESSAGES {
        cluster.submit_send(group, SIZE);
    }
    cluster.run();
    // End-to-end: last relevant delivery across all members.
    let end = if atomic {
        (0..8u32)
            .flat_map(|r| cluster.stable_deliveries(group, r).iter().copied())
            .max()
    } else {
        cluster
            .message_results()
            .iter()
            .flat_map(|r| r.delivered_at.iter().flatten().copied())
            .max()
    }
    .expect("deliveries")
    .as_secs_f64();
    let goodput = (MESSAGES as f64 * SIZE as f64 * 8.0) / end / 1e9;
    (end * 1e3, goodput)
}

fn main() {
    println!(
        "streaming {MESSAGES} x {} MB through an 8-node binomial pipeline\n",
        SIZE / MB
    );
    let (plain_ms, plain_bw) = run(false);
    let (stable_ms, stable_bw) = run(true);
    println!("plain RDMC delivery : {plain_ms:8.2} ms end-to-end  ({plain_bw:5.1} Gb/s)");
    println!("atomic  (stability) : {stable_ms:8.2} ms end-to-end  ({stable_bw:5.1} Gb/s)");
    println!(
        "\nstability tax: {:.2}% — the paper's \"surprisingly small\" added\n\
         delay, bought with one status write per member per message.",
        100.0 * (stable_ms / plain_ms - 1.0)
    );
    assert!(stable_ms >= plain_ms);
}
