//! RDMC over plain TCP (the paper's §5.3 direction): an in-process
//! cluster of real sockets streaming a sequence of checksummed messages
//! through the binomial pipeline, with end-to-end integrity verification
//! and a clean close barrier.
//!
//! ```sh
//! cargo run --release --example tcp_multicast
//! ```

use std::sync::mpsc;
use std::time::Instant;

use rdmc::Algorithm;
use rdmc_tcp::{GroupConfig, LocalCluster};

const NODES: usize = 5;
const MESSAGES: usize = 8;
const SIZE: usize = 4 << 20;

fn checksum(data: &[u8]) -> u64 {
    data.iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::launch(NODES)?;
    let (tx, rx) = mpsc::channel();
    for node in cluster.nodes() {
        let tx = tx.clone();
        let id = node.id();
        node.create_group(
            42,
            GroupConfig {
                algorithm: Algorithm::BinomialPipeline,
                block_size: 256 << 10,
                ..GroupConfig::new((0..NODES as u32).collect())
            },
            Box::new(|size| vec![0; size as usize]),
            Box::new(move |data| {
                tx.send((id, checksum(data))).expect("collector alive");
            }),
        );
    }

    let start = Instant::now();
    let mut expected = Vec::new();
    for i in 0..MESSAGES {
        let payload: Vec<u8> = (0..SIZE).map(|j| ((j * 31 + i * 7) % 251) as u8).collect();
        expected.push(checksum(&payload));
        assert!(cluster.nodes()[0].send(42, payload));
    }
    // Every member (including the root) gets a completion per message.
    let mut seen = [0usize; NODES];
    for _ in 0..NODES * MESSAGES {
        let (node, sum) = rx.recv()?;
        let idx = seen[node as usize];
        assert_eq!(
            sum, expected[idx],
            "node {node}: message {idx} checksum mismatch"
        );
        seen[node as usize] += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let goodput = (MESSAGES * SIZE) as f64 * 8.0 / elapsed / 1e9;
    println!(
        "{} x {} MB to {} receivers over loopback TCP in {:.2}s ({:.2} Gb/s goodput)",
        MESSAGES,
        SIZE >> 20,
        NODES - 1,
        elapsed,
        goodput
    );
    for node in cluster.nodes() {
        assert!(node.destroy_group(42));
    }
    cluster.shutdown();
    println!("all checksums verified; group closed cleanly");
    Ok(())
}
