//! RDMC over plain TCP (the paper's §5.3 direction): an in-process
//! cluster of real sockets streaming a sequence of large messages
//! through the binomial pipeline — the same `ClusterBuilder` API as the
//! simulated fabric, backed by one nonblocking event loop — finishing
//! with the §4.6 close barrier and a clean socket teardown.
//!
//! ```sh
//! cargo run --release --example tcp_multicast
//! ```

use std::time::Instant;

use rdmc::Algorithm;
use rdmc_sim::GroupSpec;

const NODES: usize = 5;
const MESSAGES: usize = 8;
const SIZE: u64 = 4 << 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = rdmc_tcp::builder(NODES)?.build();
    let group = cluster.create_group(GroupSpec {
        members: (0..NODES).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: 256 << 10,
        ready_window: 3,
        max_outstanding_sends: 3,
    });

    let start = Instant::now();
    for _ in 0..MESSAGES {
        cluster.submit_send(group, SIZE);
    }
    cluster.run();
    let elapsed = start.elapsed().as_secs_f64();

    let results = cluster.message_results();
    assert_eq!(results.len(), MESSAGES);
    for r in &results {
        assert!(
            r.delivered_at.iter().all(|d| d.is_some()),
            "message {} missed a member",
            r.index
        );
    }
    let goodput = (MESSAGES as u64 * SIZE) as f64 * 8.0 / elapsed / 1e9;
    println!(
        "{} x {} MB to {} receivers over loopback TCP in {:.2}s ({:.2} Gb/s goodput)",
        MESSAGES,
        SIZE >> 20,
        NODES - 1,
        elapsed,
        goodput
    );

    // A successful close certifies every message reached every member.
    assert!(cluster.destroy_group(group), "close barrier must be clean");
    rdmc_tcp::shutdown(cluster)?;
    println!("all messages delivered; group closed cleanly");
    Ok(())
}
