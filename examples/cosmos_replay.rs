//! Replays a synthetic Microsoft-Cosmos-style replication workload
//! (paper §5.2.2, Fig. 9): one generator node writes objects with a
//! heavy-tailed size distribution (12 MB median, 29 MB mean) to random
//! 3-replica groups drawn from 15 hosts, and we compare the latency
//! distribution under sequential send vs RDMC's binomial pipeline.
//!
//! ```sh
//! cargo run --release --example cosmos_replay
//! ```

use std::collections::BTreeMap;

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use workloads::{stats, CosmosTrace};

const MB: u64 = 1 << 20;

fn replay(alg: Algorithm, writes: &[workloads::CosmosWrite]) -> (Vec<f64>, f64) {
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(16)).build();
    let mut groups: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
    for w in writes {
        let mut members = vec![0usize]; // node 0 generates all traffic
        members.extend(w.targets.iter().map(|&t| t + 1));
        let gid = *groups.entry(members.clone()).or_insert_with(|| {
            cluster.create_group(GroupSpec {
                members,
                algorithm: alg.clone(),
                block_size: MB,
                ready_window: 3,
                max_outstanding_sends: 3,
            })
        });
        cluster.submit_send(gid, w.size);
    }
    cluster.run();
    let results = cluster.message_results();
    let latencies: Vec<f64> = results
        .iter()
        .map(|r| r.latency().expect("write completed").as_secs_f64() * 1e3)
        .collect();
    let end = results
        .iter()
        .flat_map(|r| r.delivered_at.iter().flatten().copied())
        .max()
        .expect("deliveries");
    let total_bytes: f64 = writes.iter().map(|w| w.size as f64).sum();
    (latencies, total_bytes * 8.0 / end.as_secs_f64() / 1e9)
}

fn main() {
    let trace = CosmosTrace {
        max_bytes: 128 * MB,
        ..CosmosTrace::default()
    };
    let writes = trace.generate(150);
    println!(
        "replaying {} writes ({} distinct 3-replica groups possible)\n",
        writes.len(),
        trace.all_groups().len()
    );
    for alg in [Algorithm::Sequential, Algorithm::BinomialPipeline] {
        let (latencies, aggregate) = replay(alg.clone(), &writes);
        println!(
            "{alg:>18}: p50 {:>7.1} ms   p95 {:>7.1} ms   aggregate {aggregate:>5.1} Gb/s",
            stats::percentile(&latencies, 50.0),
            stats::percentile(&latencies, 95.0),
        );
    }
    println!(
        "\nThe binomial pipeline replicates the same trace several times faster\n\
         and saturates the generator's NIC (the paper reports ~93 Gb/s, a\n\
         petabyte of replicated data per day)."
    );
}
