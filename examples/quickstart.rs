//! Quickstart: one multicast over the simulated RDMA fabric, and the same
//! multicast over real loopback TCP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::mpsc;

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use rdmc_tcp::{GroupConfig, LocalCluster};

const MB: u64 = 1 << 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Simulated RDMA: 8 nodes on a 100 Gb/s switch. -------------
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(8)).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 64 * MB);
    cluster.run();
    let result = &cluster.message_results()[0];
    println!(
        "simulated RDMA: 64 MB to 7 receivers in {} ({:.1} Gb/s)",
        result.latency().expect("completed"),
        result.bandwidth_gbps().expect("completed"),
    );

    // ---- 2. Real TCP sockets: the paper's Fig. 1 API. ------------------
    let tcp = LocalCluster::launch(4)?;
    let (tx, rx) = mpsc::channel();
    for node in tcp.nodes() {
        let tx = tx.clone();
        let id = node.id();
        node.create_group(
            1,
            GroupConfig::new(vec![0, 1, 2, 3]),
            Box::new(|size| vec![0; size as usize]),
            Box::new(move |data| {
                tx.send((id, data.len())).expect("main thread alive");
            }),
        );
    }
    let message = vec![0xAB; 4 * MB as usize];
    assert!(tcp.nodes()[0].send(1, message));
    for _ in 0..4 {
        let (node, len) = rx.recv()?;
        println!("TCP: node {node} completed a {len}-byte message");
    }
    // A successful close certifies every message reached every member.
    for node in tcp.nodes() {
        assert!(node.destroy_group(1), "close barrier must report clean");
    }
    tcp.shutdown();
    println!("TCP group closed cleanly: delivery certified");
    Ok(())
}
