//! Quickstart: one multicast over the simulated RDMA fabric, and the same
//! multicast — same builder, same group API — over real loopback TCP.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};

const MB: u64 = 1 << 20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Simulated RDMA: 8 nodes on a 100 Gb/s switch. -------------
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(8)).build();
    let group = cluster.create_group(GroupSpec {
        members: (0..8).collect(),
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    cluster.submit_send(group, 64 * MB);
    cluster.run();
    let result = &cluster.message_results()[0];
    println!(
        "simulated RDMA: 64 MB to 7 receivers in {} ({:.1} Gb/s)",
        result.latency().expect("completed"),
        result.bandwidth_gbps().expect("completed"),
    );

    // ---- 2. Real TCP sockets: same API, different transport. -----------
    let mut tcp = rdmc_tcp::builder(4)?.build();
    let group = tcp.create_group(GroupSpec {
        members: vec![0, 1, 2, 3],
        algorithm: Algorithm::BinomialPipeline,
        block_size: 256 << 10,
        ready_window: 3,
        max_outstanding_sends: 3,
    });
    tcp.submit_send(group, 4 * MB);
    tcp.run();
    for (member, at) in tcp.message_results()[0].delivered_at.iter().enumerate() {
        println!(
            "TCP: member {member} completed at {}",
            at.expect("delivered")
        );
    }
    // A successful close certifies every message reached every member.
    assert!(tcp.destroy_group(group), "close barrier must report clean");
    rdmc_tcp::shutdown(tcp)?;
    println!("TCP group closed cleanly: delivery certified");
    Ok(())
}
