//! Failure handling end-to-end (paper §3 property 6 and §4.6): a node
//! crashes mid-transfer on the simulated fabric; every survivor learns of
//! the failure and the group wedges. The application then does what the
//! paper prescribes: destroy the group, re-create it among the survivors,
//! and retry the transfer.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use rdmc::Algorithm;
use rdmc_sim::{ClusterBuilder, ClusterSpec, GroupSpec};
use simnet::SimTime;

const MB: u64 = 1 << 20;

fn group_spec(members: Vec<usize>) -> GroupSpec {
    GroupSpec {
        members,
        algorithm: Algorithm::BinomialPipeline,
        block_size: MB,
        ready_window: 3,
        max_outstanding_sends: 3,
    }
}

fn main() {
    // Attempt 1: node 5 dies 2 ms into a 256 MB transfer.
    let mut cluster = ClusterBuilder::new(ClusterSpec::fractus(8)).build();
    let group = cluster.create_group(group_spec((0..8).collect()));
    cluster.submit_send(group, 256 * MB);
    cluster.schedule_crash_at(5, SimTime::from_nanos(2_000_000));
    cluster.run();

    let wedged = cluster.wedged_members(group);
    println!("node 5 crashed mid-transfer; members that learned of it: {wedged:?}");
    assert_eq!(wedged.len(), 7, "every survivor must wedge");
    let failed = &cluster.message_results()[0];
    assert!(
        failed.latency().is_none(),
        "the disrupted multicast must not complete everywhere"
    );
    let got: usize = failed.delivered_at.iter().flatten().count();
    println!("first attempt aborted ({got}/8 members had completed)");

    // Recovery: close the broken group, re-form among survivors, resend.
    // (On the simulated fabric "destroy + recreate" is simply a new group;
    // the TCP transport's destroy_group would return false here,
    // reporting the failure, per §4.6.)
    let survivors: Vec<usize> = (0..8).filter(|&n| n != 5).collect();
    let retry = cluster.create_group(group_spec(survivors));
    cluster.submit_send(retry, 256 * MB);
    cluster.run();
    let result = cluster
        .message_results()
        .into_iter()
        .find(|r| r.group == retry)
        .expect("retry recorded");
    let latency = result.latency().expect("retry completes on survivors");
    println!(
        "retry on the 7 survivors completed in {} ({:.1} Gb/s)",
        latency,
        result.bandwidth_gbps().expect("completed"),
    );
}
