//! The paper's motivating scenario (§1): pushing a large artifact — a VM
//! image, a container layer, an input file — to many compute nodes at
//! once, and what each dissemination strategy costs.
//!
//! Compares sequential push (what most middleware does today), the
//! MVAPICH-style MPI broadcast, and RDMC's binomial pipeline for a 256 MB
//! "package" going to 4..64 replicas, on a Sierra-like 40 Gb/s cluster —
//! then prints the headline: with RDMC, extra replicas are almost free.
//!
//! ```sh
//! cargo run --release --example file_replication
//! ```

use baselines::run_mvapich_multicast;
use rdmc::Algorithm;
use rdmc_sim::{run_single_multicast, ClusterSpec};

const MB: u64 = 1 << 20;

fn main() {
    let spec = ClusterSpec::sierra(64);
    let image = 256 * MB;
    let block = 4 * MB;
    println!(
        "replicating a {}-MB image on a 40 Gb/s cluster\n",
        image / MB
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "replicas", "sequential", "mpi-bcast", "rdmc-pipeline"
    );
    let mut first_pipe = None;
    for n in [4usize, 8, 16, 32, 64] {
        let seq = run_single_multicast(&spec, n, Algorithm::Sequential, image, block)
            .latency
            .as_secs_f64();
        let mpi = run_mvapich_multicast(&spec, n, image, block)
            .latency
            .as_secs_f64();
        let pipe = run_single_multicast(&spec, n, Algorithm::BinomialPipeline, image, block)
            .latency
            .as_secs_f64();
        first_pipe.get_or_insert(pipe);
        println!("{n:>8}  {seq:>10.2}s  {mpi:>10.2}s  {pipe:>11.2}s");
    }
    let base = first_pipe.expect("at least one row");
    let last = run_single_multicast(&spec, 64, Algorithm::BinomialPipeline, image, block)
        .latency
        .as_secs_f64();
    println!(
        "\nRDMC: going from 3 to 63 replicas costs only {:.0}% more time —\n\
         replication is almost free (the paper's Fig. 8 insight).",
        100.0 * (last / base - 1.0)
    );
}
