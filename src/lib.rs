//! Workspace root for the RDMC reproduction.
//!
//! This crate only re-exports the member crates so that the integration
//! tests in `tests/` and the runnable programs in `examples/` can reach the
//! whole system through one dependency. The actual library code lives in
//! the workspace members:
//!
//! - [`rdmc`] — the paper's contribution: schedules, protocol engine, API.
//! - [`simnet`] / [`verbs`] — the simulated datacenter + RDMA substrate.
//! - [`rdmc_sim`] — binds the engine to the simulated fabric.
//! - [`rdmc_tcp`] — the real-TCP `Transport` backend (paper section 5.3).
//! - [`sst`], [`baselines`], [`workloads`] — comparators and workloads.
//! - [`trace`] — flight recorder, stall attribution, trace oracle.

#![forbid(unsafe_code)]

// Compile-checks every Rust code block in the README as a doc-test, so
// the documented API (including the migration table's target API) can
// never drift from the code. CI's doc job runs these via
// `cargo test --doc`.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use baselines;
pub use rdmc;
pub use rdmc_sim;
pub use rdmc_tcp;
pub use simnet;
pub use sst;
pub use trace;
pub use verbs;
pub use workloads;
